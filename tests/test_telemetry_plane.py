"""The live telemetry plane: scrape endpoint, live sync, SLOs, alerts.

Contracts certified here:

* **Scrape endpoint** — ``/metrics`` serves the registry as strict
  Prometheus text exposition (every response passes
  ``parse_prometheus``), ``/healthz`` maps the service health verdict
  to 200/503, ``/status`` serves the supervisor JSON, and unknown
  paths 404 — all without perturbing ingest.
* **Continuous cross-process sync** — a process-isolated service's
  parent registry advances *mid-run* (per-tenant lines, cache
  traffic, SLO histograms) from worker heartbeat/checkpoint deltas;
  no drain required, worker restarts never double-count, and
  histograms accumulate across worker lives.
* **Scrape isolation** — N threads hammering ``/metrics`` throughout
  a multi-tenant replay leave the run's artifacts byte-identical to
  an unscraped run (manifest-certified).
* **Alert rules** — threshold and multi-window burn-rate rules are
  deterministic under an injected clock; only state *transitions*
  emit events; the durable alert log survives a torn tail.
* **Satellites** — heartbeat-age gauges refresh at read time with no
  status ticker (S1); ``serve`` journals ``supervisor_status`` on
  checkpoint acks without ``--status-interval`` (S2); every
  ``repro_*`` family referenced in the source is schema-registered
  with non-empty HELP text (S5).
"""

import functools
import json
import os
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.common.errors import ValidationError
from repro.common.types import LogRecord
from repro.observability import (
    AlertEngine,
    BurnRateRule,
    Histogram,
    Telemetry,
    TelemetryServer,
    ThresholdRule,
    default_rules,
    load_alerts,
    load_events,
    merge_histogram_states,
    parse_prometheus,
)
from repro.observability.alerts import SEV_PAGE, STATE_FIRING, STATE_RESOLVED
from repro.observability.httpd import PROMETHEUS_CONTENT_TYPE
from repro.observability.tracing import Tracer
from repro.parsers import make_parser
from repro.resilience import ProcessFault, diff_manifests
from repro.resilience.faults import PROC_KILL
from repro.service import IngestionService, ShardSupervisor, replay_lines
from repro.service.workers import STATE_FENCED

FAST = dict(
    heartbeat_interval=0.02,
    watchdog=0.4,
    drain_timeout=60.0,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            return self.now

    def advance(self, seconds):
        with self._lock:
            self.now += seconds


def _factory():
    return functools.partial(make_parser, "Drain")


def _lines(n, start=0):
    return [f"conn from host{i % 5} port {i}" for i in range(start, start + n)]


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


# ---------------------------------------------------------------------------
# Histogram state shipping
# ---------------------------------------------------------------------------


class TestHistogramState:
    def test_state_sync_round_trip(self):
        source = Histogram((0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            source.observe(value)
        target = Histogram((0.1, 1.0))
        target.sync_state(source.state())
        assert target.counts == source.counts
        assert target.inf_count == source.inf_count
        assert target.sum == source.sum
        assert target.count == source.count

    def test_sync_rejects_bucket_mismatch(self):
        source = Histogram((0.1, 1.0))
        target = Histogram((0.1, 2.0))
        with pytest.raises(ValidationError):
            target.sync_state(source.state())

    def test_merge_sums_and_tolerates_none(self):
        a = Histogram((0.1, 1.0))
        a.observe(0.05)
        b = Histogram((0.1, 1.0))
        b.observe(0.5)
        b.observe(9.0)
        merged = merge_histogram_states(a.state(), b.state())
        assert merged["count"] == 3
        assert merged["inf"] == 1
        assert merged["sum"] == pytest.approx(9.55)
        assert merge_histogram_states(None, a.state()) == a.state()
        assert merge_histogram_states(a.state(), None) == a.state()
        assert merge_histogram_states(None, None) is None

    def test_merge_rejects_bucket_mismatch(self):
        a = Histogram((0.1,))
        b = Histogram((0.2,))
        with pytest.raises(ValidationError):
            merge_histogram_states(a.state(), b.state())

    def test_serialize_new_ships_each_span_once(self):
        tracer = Tracer(trace_id="t", clock_us=iter(range(100)).__next__)
        tracer.finish(tracer.start("a"))
        spans, cursor = tracer.serialize_new(0)
        assert [s["name"] for s in spans] == ["a"]
        spans, cursor = tracer.serialize_new(cursor)
        assert spans == []
        tracer.finish(tracer.start("b"))
        spans, cursor = tracer.serialize_new(cursor)
        assert [s["name"] for s in spans] == ["b"]
        assert cursor == 2


# ---------------------------------------------------------------------------
# The HTTP endpoint
# ---------------------------------------------------------------------------


class TestTelemetryServer:
    def test_metrics_parses_strictly_with_content_type(self):
        telemetry = Telemetry.create(trace_id="t")
        telemetry.metrics.get("repro_stream_lines_total").inc(7)
        with TelemetryServer(telemetry.metrics) as server:
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == (
                    PROMETHEUS_CONTENT_TYPE
                )
                body = response.read().decode("utf-8")
        families = parse_prometheus(body)
        assert families["samples"]["repro_stream_lines_total"] == 7.0

    def test_healthz_maps_ok_to_200_and_503(self):
        telemetry = Telemetry.create(trace_id="t")
        verdict = {"ok": True, "tenants": {}}
        with TelemetryServer(
            telemetry.metrics, health=lambda: verdict
        ) as server:
            status, body = _get(f"{server.url}/healthz")
            assert status == 200
            assert json.loads(body)["ok"] is True
            verdict["ok"] = False
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read().decode())["ok"] is False

    def test_status_serves_callable_json(self):
        telemetry = Telemetry.create(trace_id="t")
        with TelemetryServer(
            telemetry.metrics,
            status=lambda: {"tenants": {"a": {"state": "running"}}},
        ) as server:
            status, body = _get(f"{server.url}/status")
        assert status == 200
        assert json.loads(body)["tenants"]["a"]["state"] == "running"

    def test_unknown_path_404_lists_routes(self):
        telemetry = Telemetry.create(trace_id="t")
        with TelemetryServer(telemetry.metrics) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/nope")
            assert excinfo.value.code == 404
            payload = json.loads(excinfo.value.read().decode())
        assert "/metrics" in payload["paths"]

    def test_port_zero_publishes_ephemeral_port(self):
        telemetry = Telemetry.create(trace_id="t")
        server = TelemetryServer(telemetry.metrics)
        assert server.port == 0
        server.start()
        try:
            assert server.port > 0
            assert str(server.port) in server.url
        finally:
            server.stop()


class TestWatchReconnect:
    """``watch`` rides out endpoint restarts instead of crashing."""

    def test_bounded_watch_ends_dark_with_runtime_exit(self, capsys):
        # Nothing ever listens here: every poll fails, the banner
        # shows, and a bounded run must not pretend success.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        code = main(
            [
                "watch", f"http://127.0.0.1:{dead_port}",
                "--iterations", "2", "--interval", "0.05",
            ]
        )
        assert code == 4
        out = capsys.readouterr().out
        assert "DISCONNECTED" in out
        assert "retrying in" in out

    def test_watch_survives_endpoint_restart(self, capsys):
        telemetry = Telemetry.create(trace_id="t")
        first = TelemetryServer(
            telemetry.metrics, status=lambda: {"isolation": "thread"}
        )
        first.start()
        port = first.port
        # The endpoint dies (a serve restart)...
        first.stop()
        second = TelemetryServer(
            telemetry.metrics,
            port=port,
            status=lambda: {"isolation": "thread"},
        )

        def revive() -> None:
            time.sleep(0.4)
            second.start()

        reviver = threading.Thread(target=revive, daemon=True)
        reviver.start()
        try:
            code = main(
                [
                    "watch", f"http://127.0.0.1:{port}",
                    "--iterations", "8", "--interval", "0.2",
                ]
            )
        finally:
            reviver.join()
            second.stop()
        # ...and watch reconnects: the run ends on a live frame.
        assert code == 0
        out = capsys.readouterr().out
        assert "DISCONNECTED" in out
        assert out.rstrip().endswith("alerts: none firing")


# ---------------------------------------------------------------------------
# Alert rules (deterministic under a fake clock)
# ---------------------------------------------------------------------------


class TestThresholdRule:
    def test_fires_after_for_seconds_and_resolves(self):
        clock = FakeClock()
        telemetry = Telemetry.create(trace_id="t", clock=clock)
        gauge = telemetry.metrics.get(
            "repro_worker_heartbeat_age_seconds"
        ).labels(tenant="a")
        rule = ThresholdRule(
            "stall",
            "repro_worker_heartbeat_age_seconds",
            threshold=5.0,
            for_seconds=2.0,
        )
        engine = AlertEngine(telemetry.metrics, [rule], clock=clock)
        gauge.set(9.0)
        assert engine.tick() == []  # breached but not held long enough
        clock.advance(2.0)
        fired = engine.tick()
        assert [e.state for e in fired] == [STATE_FIRING]
        assert fired[0].labels == {"tenant": "a"}
        assert engine.tick() == [], "no duplicate while still firing"
        gauge.set(0.5)
        resolved = engine.tick()
        assert [e.state for e in resolved] == [STATE_RESOLVED]
        assert engine.active() == []

    def test_rejects_unknown_op(self):
        with pytest.raises(ValidationError):
            ThresholdRule("x", "m", threshold=1.0, op="!=")


class TestBurnRateRule:
    def _engine(self, clock, telemetry, **kwargs):
        rule = BurnRateRule(
            "burn",
            "repro_tenant_quarantined_total",
            (
                "repro_tenant_lines_total",
                "repro_tenant_quarantined_total",
            ),
            objective=kwargs.pop("objective", 0.9),
            fast_window=kwargs.pop("fast_window", 10.0),
            slow_window=kwargs.pop("slow_window", 40.0),
            factor=kwargs.pop("factor", 2.0),
        )
        return rule, AlertEngine(telemetry.metrics, [rule], clock=clock)

    def test_fires_only_when_both_windows_burn(self):
        clock = FakeClock()
        telemetry = Telemetry.create(trace_id="t", clock=clock)
        lines = telemetry.metrics.get("repro_tenant_lines_total").labels(
            tenant="a"
        )
        bad = telemetry.metrics.get(
            "repro_tenant_quarantined_total"
        ).labels(tenant="a")
        rule, engine = self._engine(clock, telemetry)
        lines.inc(100)
        assert engine.tick() == [], "no errors, no burn"
        # 50% error ratio against a 10% budget = 5x burn in both
        # windows once enough samples accumulate.
        for _ in range(5):
            clock.advance(5.0)
            lines.inc(10)
            bad.inc(10)
            events = engine.tick()
        assert any(e.state == STATE_FIRING for e in events) or (
            engine.active()
        )
        active = engine.active()
        assert active and active[0]["rule"] == "burn"
        assert active[0]["labels"] == {"tenant": "a"}
        assert active[0]["value"] >= 2.0

    def test_brief_blip_does_not_fire_slow_window(self):
        clock = FakeClock()
        telemetry = Telemetry.create(trace_id="t", clock=clock)
        lines = telemetry.metrics.get("repro_tenant_lines_total").labels(
            tenant="a"
        )
        bad = telemetry.metrics.get(
            "repro_tenant_quarantined_total"
        ).labels(tenant="a")
        rule, engine = self._engine(
            clock, telemetry, fast_window=5.0, slow_window=40.0
        )
        # Long clean history fills the slow window...
        for _ in range(8):
            lines.inc(100)
            engine.tick()
            clock.advance(5.0)
        # ...then one bad burst: the fast window burns, the slow one
        # has absorbed too much clean traffic to cross the factor.
        bad.inc(2)
        lines.inc(2)
        engine.tick()
        clock.advance(1.0)
        events = engine.tick()
        assert not any(e.state == STATE_FIRING for e in events)
        assert engine.active() == []

    def test_budget_remaining_gauge_published(self):
        clock = FakeClock()
        telemetry = Telemetry.create(trace_id="t", clock=clock)
        telemetry.metrics.get("repro_tenant_lines_total").labels(
            tenant="a"
        ).inc(100)
        rule, engine = self._engine(clock, telemetry)
        engine.tick()
        clock.advance(1.0)
        engine.tick()
        assert telemetry.metrics.value(
            "repro_tenant_error_budget_remaining", tenant="a"
        ) == 1.0

    def test_rejects_bad_windows_and_objective(self):
        with pytest.raises(ValidationError):
            BurnRateRule("x", "n", "d", objective=1.0)
        with pytest.raises(ValidationError):
            BurnRateRule("x", "n", "d", fast_window=60.0, slow_window=30.0)


class TestAlertEngineDurability:
    def test_transitions_counted_in_registry(self, tmp_path):
        clock = FakeClock()
        telemetry = Telemetry.create(trace_id="t", clock=clock)
        gauge = telemetry.metrics.get(
            "repro_worker_heartbeat_age_seconds"
        ).labels(tenant="a")
        rule = ThresholdRule(
            "stall",
            "repro_worker_heartbeat_age_seconds",
            threshold=1.0,
        )
        engine = AlertEngine(
            telemetry.metrics, [rule], clock=clock,
            events=telemetry.events,
        )
        gauge.set(5.0)
        engine.tick()
        assert telemetry.metrics.value(
            "repro_alerts_total", rule="stall", state="firing"
        ) == 1.0
        assert telemetry.metrics.value("repro_alerts_active") == 1.0
        gauge.set(0.0)
        engine.tick()
        assert telemetry.metrics.value(
            "repro_alerts_total", rule="stall", state="resolved"
        ) == 1.0
        assert telemetry.metrics.value("repro_alerts_active") == 0.0
        kinds = [e["kind"] for e in telemetry.events.events]
        assert kinds.count("alert") == 2

    def test_alert_log_survives_torn_tail(self, tmp_path):
        log_path = str(tmp_path / "alerts.jsonl")
        clock = FakeClock()
        telemetry = Telemetry.create(trace_id="t", clock=clock)
        telemetry.metrics.get(
            "repro_worker_heartbeat_age_seconds"
        ).labels(tenant="a").set(9.0)
        with AlertEngine(
            telemetry.metrics,
            [
                ThresholdRule(
                    "stall",
                    "repro_worker_heartbeat_age_seconds",
                    threshold=1.0,
                )
            ],
            clock=clock,
            log_path=log_path,
        ) as engine:
            assert len(engine.tick()) == 1
        with open(log_path, "ab") as handle:
            handle.write(b"\x00\x07torn-frame-garbage")
        alerts = load_alerts(log_path)
        assert len(alerts) == 1
        assert alerts[0]["rule"] == "stall"
        assert alerts[0]["state"] == STATE_FIRING
        assert alerts[0]["labels"] == {"tenant": "a"}


# ---------------------------------------------------------------------------
# Live cross-process sync + acceptance scenarios
# ---------------------------------------------------------------------------


class TestLiveProcessSync:
    def test_mid_run_scrape_shows_advancing_tenant_counters(self, tmp_path):
        """Acceptance: two process-isolated tenants, a mid-run /metrics
        scrape shows nonzero, monotonically advancing per-tenant
        counters for both — before any drain."""
        telemetry = Telemetry.create(trace_id="t")
        service = IngestionService(
            str(tmp_path / "data"),
            _factory(),
            parser_name="Drain",
            telemetry=telemetry,
            isolation="process",
            worker_kwargs=dict(checkpoint_every=50, **FAST),
        )
        lines = []
        for i in range(1500):
            lines.append(f"alpha\tproc a{i % 7} started on node-{i % 13}")
            lines.append(f"beta\tconn b{i % 5} closed from host-{i % 11}")
        replayer = threading.Thread(
            target=replay_lines, args=(service, lines), daemon=True
        )
        with TelemetryServer(telemetry.metrics) as server:
            replayer.start()
            deadline = time.monotonic() + 30
            first = None
            while time.monotonic() < deadline:
                _, body = _get(f"{server.url}/metrics")
                samples = parse_prometheus(body)["samples"]
                alpha = samples.get(
                    'repro_tenant_lines_total{tenant="alpha"}', 0.0
                )
                beta = samples.get(
                    'repro_tenant_lines_total{tenant="beta"}', 0.0
                )
                if alpha > 0 and beta > 0:
                    first = (alpha, beta)
                    break
                time.sleep(0.05)
            assert first is not None, (
                "per-tenant counters never went nonzero mid-run"
            )
            # Monotonic advance while the replay is still feeding.
            advanced = None
            while time.monotonic() < deadline:
                _, body = _get(f"{server.url}/metrics")
                samples = parse_prometheus(body)["samples"]
                now = (
                    samples['repro_tenant_lines_total{tenant="alpha"}'],
                    samples['repro_tenant_lines_total{tenant="beta"}'],
                )
                assert now[0] >= first[0] and now[1] >= first[1]
                if now[0] > first[0] and now[1] > first[1]:
                    advanced = now
                    break
                time.sleep(0.05)
            assert advanced is not None, "counters never advanced mid-run"
            replayer.join(timeout=60)
            service.drain()
            _, body = _get(f"{server.url}/metrics")
        samples = parse_prometheus(body)["samples"]
        assert samples['repro_tenant_lines_total{tenant="alpha"}'] == 1500.0
        assert samples['repro_tenant_lines_total{tenant="beta"}'] == 1500.0
        # SLO histograms shipped across the process boundary.
        assert samples[
            'repro_tenant_ingest_latency_seconds_count{tenant="alpha"}'
        ] >= 1.0
        assert samples[
            'repro_tenant_queue_wait_seconds_count{tenant="beta"}'
        ] >= 1.0

    def test_restart_does_not_double_count_lines(self, tmp_path):
        """Worker counters re-climb from the checkpoint after a crash;
        the high-water sync must count each line exactly once."""
        telemetry = Telemetry.create(trace_id="t")
        pill = ProcessFault(PROC_KILL, at_record=30, lives=(1,))
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            telemetry=telemetry, checkpoint_every=10, faults=(pill,),
            poison_threshold=5, fence_threshold=10, **FAST,
        )
        for line in _lines(60):
            sup.submit(LogRecord(content=line))
        summary = sup.drain()
        assert summary["lines"] == 60
        assert telemetry.metrics.value(
            "repro_tenant_lines_total", tenant="t"
        ) == 60.0
        assert telemetry.metrics.value(
            "repro_service_lines_total", tenant="t"
        ) == 60.0

    def test_histograms_accumulate_across_worker_lives(self, tmp_path):
        telemetry = Telemetry.create(trace_id="t")
        pill = ProcessFault(PROC_KILL, at_record=25, lives=(1,))
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            telemetry=telemetry, checkpoint_every=10, faults=(pill,),
            poison_threshold=5, fence_threshold=10, **FAST,
        )
        for line in _lines(60):
            sup.submit(LogRecord(content=line))
        sup.drain()
        family = telemetry.metrics.get("repro_tenant_ingest_latency_seconds")
        child = dict(family.children())[("t",)]
        # Every line was fed exactly once across both lives; the
        # merged histogram must cover at least the second life's share
        # and never exceed one observation per line.
        assert 0 < child.count <= 60

    def test_healthz_flips_503_when_a_shard_fences(self, tmp_path):
        telemetry = Telemetry.create(trace_id="t")
        faults = tuple(
            ProcessFault(PROC_KILL, at_record=record, lives=(life,))
            for life, record in enumerate((3, 5, 7, 9), start=1)
        )
        service = IngestionService(
            str(tmp_path / "data"),
            _factory(),
            parser_name="Drain",
            telemetry=telemetry,
            isolation="process",
            worker_kwargs=dict(
                checkpoint_every=100,
                poison_threshold=5,
                fence_threshold=3,
                faults={"t": faults},
                **FAST,
            ),
        )
        with TelemetryServer(
            telemetry.metrics, health=service.health
        ) as server:
            status, body = _get(f"{server.url}/healthz")
            assert status == 200, "healthy before any tenant exists"
            for line in _lines(20):
                service.submit_line(f"t\t{line}")
            shard = service.shard("t")
            deadline = time.monotonic() + 30
            while (
                shard.state != STATE_FENCED
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert shard.state == STATE_FENCED
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/healthz")
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode())
            assert payload["ok"] is False
            assert payload["tenants"]["t"]["state"] == "fenced"
        service.drain()

    def test_crash_storm_fires_burn_rate_alert_surviving_torn_tail(
        self, tmp_path
    ):
        """Acceptance: a poison-pill crash storm quarantines records;
        the burn-rate rule fires at least one durable AlertEvent that
        survives torn-tail recovery of the alert log."""
        log_path = str(tmp_path / "alerts.jsonl")
        telemetry = Telemetry.create(trace_id="t")
        pill = ProcessFault(
            PROC_KILL, at_record=30, lives=(1, 2, 3, 4, 5, 6)
        )
        sup = ShardSupervisor(
            "t", str(tmp_path / "data"), _factory(), parser_name="Drain",
            telemetry=telemetry, checkpoint_every=10, faults=(pill,),
            poison_threshold=2, fence_threshold=10, **FAST,
        )
        engine = AlertEngine(
            telemetry.metrics,
            default_rules(objective=0.995, fast_window=300, slow_window=300),
            log_path=log_path,
        )
        # Feed clean traffic and wait for the live sync to surface it,
        # so the rule sees a pre-storm baseline sample for the tenant.
        for line in _lines(20):
            sup.submit(LogRecord(content=line))
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if telemetry.metrics.value(
                "repro_tenant_lines_total", tenant="t"
            ) > 0:
                break
            time.sleep(0.02)
        engine.tick()  # clean baseline sample
        for line in _lines(40, start=20):
            sup.submit(LogRecord(content=line))
        summary = sup.drain()
        assert summary["quarantined"] == 1, "the pill was diverted"
        fired = engine.tick()
        assert any(
            e.rule == "tenant-error-budget-burn"
            and e.state == STATE_FIRING
            and e.severity == SEV_PAGE
            for e in fired
        ), f"burn-rate alert did not fire: {fired}"
        engine.close()
        with open(log_path, "ab") as handle:
            handle.write(b"\x00\x01torn")
        alerts = load_alerts(log_path)
        burns = [
            a for a in alerts if a["rule"] == "tenant-error-budget-burn"
        ]
        assert burns and burns[0]["state"] == STATE_FIRING
        assert burns[0]["labels"] == {"tenant": "t"}


class TestScrapeIsolation:
    def _run(self, data_dir, lines, *, hammer):
        telemetry = Telemetry.create(trace_id="t")
        service = IngestionService(
            data_dir, _factory(), parser_name="Drain", telemetry=telemetry
        )
        errors: list[Exception] = []
        if hammer:
            stop = threading.Event()

            def _hammer(server_url):
                while not stop.is_set():
                    try:
                        _, body = _get(f"{server_url}/metrics")
                        parse_prometheus(body)
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return

            with TelemetryServer(telemetry.metrics) as server:
                threads = [
                    threading.Thread(
                        target=_hammer, args=(server.url,), daemon=True
                    )
                    for _ in range(4)
                ]
                for thread in threads:
                    thread.start()
                replay_lines(service, lines)
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
        else:
            replay_lines(service, lines)
        service.drain()
        return errors

    def test_hammered_scrapes_leave_artifacts_byte_identical(
        self, tmp_path
    ):
        lines = []
        for i in range(3000):
            lines.append(f"alpha\tproc a{i % 7} started on node-{i % 13}")
            lines.append(f"beta\tconn b{i % 5} closed from host-{i % 11}")
        scraped = str(tmp_path / "scraped")
        plain = str(tmp_path / "plain")
        errors = self._run(scraped, lines, hammer=True)
        assert errors == [], f"a scrape failed validation: {errors[:1]}"
        assert self._run(plain, lines, hammer=False) == []
        for tenant in ("alpha", "beta"):
            for name in ("out.events", "out.structured"):
                with open(os.path.join(scraped, tenant, name), "rb") as a:
                    got = a.read()
                with open(os.path.join(plain, tenant, name), "rb") as b:
                    want = b.read()
                assert got == want, f"{tenant}/{name} diverged"
            differences = diff_manifests(
                os.path.join(scraped, tenant, "out.manifest.json"),
                os.path.join(plain, tenant, "out.manifest.json"),
            )
            assert differences == [], differences


# ---------------------------------------------------------------------------
# Satellites
# ---------------------------------------------------------------------------


class TestHeartbeatReadTime:
    def test_heartbeat_age_refreshes_on_scrape_without_status_path(
        self, tmp_path
    ):
        """S1 regression: the heartbeat-age gauge is a read-time
        collector — a bare registry read reflects the current age with
        no status ticker or supervisor_status call anywhere."""
        telemetry = Telemetry.create(trace_id="t")
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            telemetry=telemetry, **FAST,
        )
        for line in _lines(5):
            sup.submit(LogRecord(content=line))
        sup.drain()
        # After drain the monitor thread is gone: _last_seen is frozen,
        # so the collected age must track the read clock, not a cached
        # status snapshot.
        first = telemetry.metrics.value(
            "repro_worker_heartbeat_age_seconds", tenant="t"
        )
        time.sleep(0.05)
        second = telemetry.metrics.value(
            "repro_worker_heartbeat_age_seconds", tenant="t"
        )
        assert second > first >= 0.0


class TestServeCheckpointJournal:
    def test_serve_journals_status_on_checkpoint_acks(self, tmp_path):
        """S2: no --status-interval, yet the event timeline carries
        supervisor_status events journaled on worker checkpoint acks."""
        replay = str(tmp_path / "lines.log")
        with open(replay, "w", encoding="utf-8") as handle:
            for i in range(800):
                handle.write(f"alpha\tproc a{i % 7} on node-{i % 13}\n")
        events_out = str(tmp_path / "events.jsonl")
        assert main([
            "serve", "Drain", str(tmp_path / "data"),
            "--replay", replay,
            "--isolation", "process",
            "--checkpoint-every", "100",
            "--events-out", events_out,
        ]) == 0
        events = load_events(events_out)
        status_events = [
            e for e in events if e["kind"] == "supervisor_status"
        ]
        assert status_events, "no supervisor_status journaled"
        sample = status_events[0]
        assert "alpha" in sample["tenants"]
        assert sample["line"].startswith("supervisor: alpha ")


class TestSchemaCoverage:
    #: Metric families may only be referenced through the registered
    #: schema: every quoted repro_* literal in the source must resolve
    #: to a schema-registered family with non-empty HELP text.
    LITERAL_RE = re.compile(r'"(repro_[a-z0-9_]+)"')

    def _source_literals(self):
        root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        names = set()
        for dirpath, _dirnames, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, encoding="utf-8") as handle:
                    names.update(self.LITERAL_RE.findall(handle.read()))
        return names

    def test_every_family_literal_is_registered_with_help(self):
        telemetry = Telemetry.create(trace_id="t")
        families = {
            family.name: family
            for family in telemetry.metrics.families()
        }
        literals = self._source_literals()
        assert literals, "source scan found no repro_* families"
        missing = sorted(literals - set(families))
        assert missing == [], (
            f"families referenced but never schema-registered: {missing}"
        )
        for name, family in families.items():
            assert family.help, f"{name} has empty HELP text"

    def test_rendered_exposition_carries_help_and_type_for_all(self):
        telemetry = Telemetry.create(trace_id="t")
        from repro.observability import render_prometheus

        parsed = parse_prometheus(render_prometheus(telemetry.metrics))
        for family in telemetry.metrics.families():
            assert family.name in parsed["types"], family.name
            assert parsed["help"].get(family.name), family.name


class TestThreadModeTenantMetrics:
    def test_thread_shard_collector_syncs_per_tenant_families(
        self, tmp_path
    ):
        telemetry = Telemetry.create(trace_id="t")
        service = IngestionService(
            str(tmp_path / "data"),
            _factory(),
            parser_name="Drain",
            telemetry=telemetry,
        )
        for line in _lines(120):
            service.submit_line(f"a\t{line}")
        value = telemetry.metrics.value
        assert value("repro_tenant_lines_total", tenant="a") == 120.0
        hits = value(
            "repro_tenant_cache_hits_total", tenant="a", kind="exact"
        ) + value(
            "repro_tenant_cache_hits_total", tenant="a", kind="template"
        )
        misses = value("repro_tenant_cache_misses_total", tenant="a")
        assert hits + misses == 120.0
        family = telemetry.metrics.get(
            "repro_tenant_ingest_latency_seconds"
        )
        child = dict(family.children())[("a",)]
        assert child.count == 120
        service.drain()
        # Templates materialize on flush; after drain the events gauge
        # reflects the discovered vocabulary.
        assert value("repro_tenant_events", tenant="a") >= 1.0

    def test_thread_collector_deltas_do_not_double_count(self, tmp_path):
        telemetry = Telemetry.create(trace_id="t")
        service = IngestionService(
            str(tmp_path / "data"),
            _factory(),
            parser_name="Drain",
            telemetry=telemetry,
        )
        for line in _lines(50):
            service.submit_line(f"a\t{line}")
        value = telemetry.metrics.value
        for _ in range(5):  # repeated scrapes must not re-apply deltas
            assert value("repro_tenant_lines_total", tenant="a") == 50.0
        service.drain()
