"""Unit tests for the LKE parser."""

import math

import pytest

from repro.common.errors import ParserConfigurationError
from repro.parsers import Lke
from repro.parsers.lke import (
    _weighted_edit_distance,
    estimate_threshold_two_means,
)


class TestConfiguration:
    def test_rejects_split_threshold_below_two(self):
        with pytest.raises(ParserConfigurationError):
            Lke(split_threshold=1)

    def test_rejects_negative_distance_threshold(self):
        with pytest.raises(ParserConfigurationError):
            Lke(distance_threshold=-0.5)

    def test_rejects_tiny_threshold_sample(self):
        with pytest.raises(ParserConfigurationError):
            Lke(threshold_sample=1)


class TestWeightedEditDistance:
    def test_identical_is_zero(self):
        assert _weighted_edit_distance(("a", "b"), ("a", "b")) == 0.0

    def test_symmetric(self):
        a, b = ("x", "y", "z"), ("x", "q")
        assert _weighted_edit_distance(a, b) == pytest.approx(
            _weighted_edit_distance(b, a)
        )

    def test_head_edits_cost_more_than_tail_edits(self):
        base = tuple("abcdefgh")
        head = ("X",) + base[1:]
        tail = base[:-1] + ("X",)
        assert _weighted_edit_distance(base, head) > _weighted_edit_distance(
            base, tail
        )

    def test_bound_early_abandon_returns_inf(self):
        a = tuple("aaaaaaaa")
        b = tuple("bbbbbbbb")
        assert math.isinf(_weighted_edit_distance(a, b, bound=0.1))

    def test_bound_does_not_change_small_distances(self):
        a = ("open", "file", "x")
        b = ("open", "file", "y")
        exact = _weighted_edit_distance(a, b)
        assert _weighted_edit_distance(a, b, bound=10.0) == exact

    def test_empty_sequences(self):
        assert _weighted_edit_distance((), ()) == 0.0
        assert _weighted_edit_distance((), ("a",)) > 0


class TestThresholdEstimate:
    def test_bimodal_split(self):
        distances = [0.1, 0.2, 0.15, 5.0, 5.2, 4.9]
        threshold = estimate_threshold_two_means(distances)
        assert 0.2 < threshold < 4.9

    def test_empty(self):
        assert estimate_threshold_two_means([]) == 0.0

    def test_constant_distances(self):
        threshold = estimate_threshold_two_means([1.0, 1.0, 1.0])
        assert threshold >= 1.0


class TestClustering:
    def test_clusters_same_event(self):
        # Parameters carry digits (host ids, durations) as real log
        # parameters do; LKE's splitting heuristic leaves digit-bearing
        # columns alone.
        contents = [
            "connection accepted from host h101",
            "connection accepted from host h202",
            "connection accepted from host h303",
            "database checkpoint completed in 42 ms",
            "database checkpoint completed in 99 ms",
            # A singleton event gives the nearest-neighbour threshold
            # estimate its "is its own event" mode.
            "kernel panic at address 0xdeadbeef now",
        ]
        result = Lke(seed=1).parse_contents(contents)
        assert result.assignments[0] == result.assignments[1] == (
            result.assignments[2]
        )
        assert result.assignments[3] == result.assignments[4]
        assert result.assignments[0] != result.assignments[3]

    def test_deduplication_preserves_line_count(self):
        contents = ["same event here"] * 7 + ["another event now"] * 3
        result = Lke(seed=1).parse_contents(contents)
        assert len(result.assignments) == 10
        assert len(set(result.assignments)) == 2

    def test_fixed_threshold_skips_estimation(self):
        contents = ["a b 1", "a b 2", "x y 9000"]
        result = Lke(distance_threshold=0.8, seed=1).parse_contents(contents)
        assert result.assignments[0] == result.assignments[1]
        assert result.assignments[0] != result.assignments[2]

    def test_zero_threshold_keeps_uniques_apart(self):
        contents = ["a b 1", "a b 2", "a b 1"]
        result = Lke(distance_threshold=0.0, seed=1).parse_contents(contents)
        assert result.assignments[0] == result.assignments[2]
        assert result.assignments[0] != result.assignments[1]

    def test_empty_input(self):
        assert len(Lke(seed=1).parse([])) == 0

    def test_single_message(self):
        result = Lke(seed=1).parse_contents(["lonely line"])
        assert result.assignments == ["E1"]

    def test_splitting_separates_symbolic_constants(self):
        # One merged cluster mixing "up"/"down" at a constant position
        # must be split; the numeric id column must not be split on.
        contents = [f"node n{i} is up" for i in range(6)] + [
            f"node n{i} is down" for i in range(6)
        ]
        result = Lke(distance_threshold=1.0, seed=1).parse_contents(contents)
        assert result.assignments[0] != result.assignments[6]

    def test_digit_values_not_split(self):
        contents = [f"generating core.{c}" for c in (256, 512)] * 5
        result = Lke(distance_threshold=1.0, seed=1).parse_contents(contents)
        assert len(set(result.assignments)) == 1

    def test_template_uses_common_skeleton(self):
        contents = ["load module mod1 ok", "load module mod2 ok"]
        result = Lke(distance_threshold=1.5, seed=1).parse_contents(contents)
        assert len(result.events) == 1
        assert result.events[0].template == "load module * ok"

    def test_runs_reproducible_with_seed(self):
        contents = [f"evt {i % 4} payload {i}" for i in range(40)]
        a = Lke(seed=9).parse_contents(contents)
        b = Lke(seed=9).parse_contents(contents)
        assert a.assignments == b.assignments
