"""Tests for the chunked parallel parser (§V future-work direction)."""

import pytest

from repro.common.errors import ParserConfigurationError
from repro.datasets import generate_dataset, get_dataset_spec
from repro.evaluation import f_measure
from repro.parsers import ChunkedParallelParser, Iplom, Slct


def _iplom():
    return Iplom()


def _slct():
    return Slct(support=3)


class TestConfiguration:
    def test_rejects_zero_chunk(self):
        with pytest.raises(ParserConfigurationError):
            ChunkedParallelParser(_iplom, chunk_size=0)

    def test_rejects_zero_workers(self):
        with pytest.raises(ParserConfigurationError):
            ChunkedParallelParser(_iplom, workers=0)


class TestSequentialChunking:
    def test_empty_input(self):
        result = ChunkedParallelParser(_iplom, chunk_size=10).parse([])
        assert len(result) == 0

    def test_assignments_cover_all_lines(self):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 500, seed=1)
        parser = ChunkedParallelParser(_iplom, chunk_size=120)
        result = parser.parse(dataset.records)
        assert len(result.assignments) == 500

    def test_identical_templates_merged_across_chunks(self):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 600, seed=2)
        chunked = ChunkedParallelParser(_iplom, chunk_size=200).parse(
            dataset.records
        )
        # Every event id must be unique and every template appear once.
        templates = [e.template for e in chunked.events]
        assert len(templates) == len(set(templates))

    def test_accuracy_close_to_unchunked(self):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 900, seed=3)
        truth = dataset.truth_assignments
        whole = f_measure(
            Iplom().parse(dataset.records).assignments, truth
        )
        chunked = f_measure(
            ChunkedParallelParser(_iplom, chunk_size=300)
            .parse(dataset.records)
            .assignments,
            truth,
        )
        assert chunked >= whole - 0.1

    def test_outliers_preserved(self):
        contents = ["common line type"] * 30 + ["rare solitary message"]
        from repro.common.types import records_from_contents

        parser = ChunkedParallelParser(_slct, chunk_size=31)
        result = parser.parse(records_from_contents(contents))
        assert result.assignments[-1] == "OUTLIER"


class TestMultiprocess:
    def test_two_workers_equivalent_to_one(self):
        dataset = generate_dataset(get_dataset_spec("Zookeeper"), 400, seed=4)
        sequential = ChunkedParallelParser(_iplom, chunk_size=100, workers=1)
        parallel = ChunkedParallelParser(_iplom, chunk_size=100, workers=2)
        a = sequential.parse(dataset.records)
        b = parallel.parse(dataset.records)
        assert a.assignments == b.assignments
        assert [e.template for e in a.events] == [
            e.template for e in b.events
        ]
