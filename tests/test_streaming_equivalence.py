"""Parser-equivalence harness: streaming must agree with batch.

The certified ``prefix`` flush policy is checked for *exact* identity
(template set + per-line assignments) across all four paper parsers on
the three synthetic datasets.  The fast ``delta`` policy is checked
for exact identity wherever the underlying algorithm is scale-free,
and for bounded drift where it is not — the paper's parsers are global
algorithms (SLCT's corpus-wide support, IPLoM's partition goodness,
LKE/LogSig's data-dependent seeding), so delta streaming is
approximate by nature.
"""

from functools import partial

import pytest

from repro.common.types import LogRecord, ParseResult
from repro.datasets import (
    generate_dataset,
    generate_hdfs_sessions,
    get_dataset_spec,
)
from repro.mining import build_event_matrix
from repro.parsers import make_parser
from repro.parsers.base import OUTLIER, Clustering, LogParser
from repro.streaming import (
    PENDING_EVENT_ID,
    ParseSession,
    StreamingParser,
    compare_stream_to_batch,
)

SEED = 11
DATASETS = ["HDFS", "Proxifier", "BGL"]

#: (parser, params-builder, dataset size, flush size).  LKE/LogSig get
#: smaller samples because their clustering is quadratic in unique
#: messages, as in the paper's own evaluation setup.
PARSER_CASES = [
    ("SLCT", lambda spec: {"support": 0.01}, 1500, 500),
    ("IPLoM", lambda spec: {}, 1500, 500),
    ("LKE", lambda spec: {"seed": 1}, 500, 150),
    (
        "LogSig",
        lambda spec: {"seed": 1, "groups": len(spec.bank.templates)},
        500,
        150,
    ),
    ("Drain", lambda spec: {}, 1500, 500),
]


def _case(parser_name, dataset):
    name, params_of, size, flush = next(
        case for case in PARSER_CASES if case[0] == parser_name
    )
    spec = get_dataset_spec(dataset)
    factory = partial(make_parser, name, **params_of(spec))
    records = generate_dataset(spec, size, seed=SEED).records
    return factory, records, flush


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("parser_name", [c[0] for c in PARSER_CASES])
def test_prefix_streaming_identical_to_batch(parser_name, dataset):
    factory, records, flush = _case(parser_name, dataset)
    report = compare_stream_to_batch(
        factory, records, flush_policy="prefix", flush_size=flush
    )
    assert report.equivalent, report.describe()


class _FirstTokenParser(LogParser):
    """Deterministic, scale-free stub: cluster by (first token, length).

    Its decisions never depend on corpus-wide statistics, so even the
    approximate delta policy must reproduce batch output exactly —
    this isolates the engine's bookkeeping from parser instability.
    """

    name = "FirstToken"

    def _cluster(self, token_lists):
        groups: dict[tuple[str, int], int] = {}
        labels = []
        templates = []
        for tokens in token_lists:
            key = (tokens[0], len(tokens))
            if key not in groups:
                groups[key] = len(templates)
                templates.append([tokens[0]] + ["*"] * (len(tokens) - 1))
            labels.append(groups[key])
        return Clustering(labels=labels, templates=templates)


@pytest.mark.parametrize("dataset", DATASETS)
def test_delta_streaming_exact_for_scale_free_parser(dataset):
    records = generate_dataset(get_dataset_spec(dataset), 1500, seed=SEED).records
    report = compare_stream_to_batch(
        _FirstTokenParser, records, flush_policy="delta", flush_size=300
    )
    assert report.equivalent, report.describe()


@pytest.mark.parametrize("dataset", DATASETS)
def test_delta_streaming_drift_bounded_for_drain(dataset):
    # Drain is deterministic but not scale-free under delta flushing:
    # each flush's fresh tree sees only that flush's cache misses, so
    # its templates generalize less than the full-corpus batch tree's.
    # The prefix policy (above) is exact; delta drift stays bounded.
    records = generate_dataset(get_dataset_spec(dataset), 1500, seed=SEED).records
    report = compare_stream_to_batch(
        partial(make_parser, "Drain"),
        records,
        flush_policy="delta",
        flush_size=300,
    )
    assert report.agreement > 0.7, report.describe()


def test_delta_streaming_exact_for_drain_on_proxifier():
    # Proxifier's small event bank converges within one flush, so even
    # delta-flushed Drain reproduces the batch parse exactly.
    records = generate_dataset(
        get_dataset_spec("Proxifier"), 1500, seed=SEED
    ).records
    report = compare_stream_to_batch(
        partial(make_parser, "Drain"),
        records,
        flush_policy="delta",
        flush_size=300,
    )
    assert report.equivalent, report.describe()


def test_delta_streaming_exact_on_stable_combo():
    # Pinned from the tuning grid: IPLoM's partitioning is stable on
    # Proxifier's small event bank, so even delta flushing converges
    # to the batch result.
    spec = get_dataset_spec("Proxifier")
    records = generate_dataset(spec, 2000, seed=SEED).records
    report = compare_stream_to_batch(
        partial(make_parser, "IPLoM"),
        records,
        flush_policy="delta",
        flush_size=500,
    )
    assert report.equivalent, report.describe()


def test_delta_streaming_drift_is_bounded():
    spec = get_dataset_spec("HDFS")
    records = generate_dataset(spec, 2000, seed=SEED).records
    report = compare_stream_to_batch(
        partial(make_parser, "IPLoM"),
        records,
        flush_policy="delta",
        flush_size=500,
    )
    assert report.agreement > 0.85, report.describe()


class _NoSingletonParser(LogParser):
    """Stub that refuses singleton groups, like support-based parsers."""

    name = "NoSingleton"

    def _cluster(self, token_lists):
        counts: dict[tuple[str, int], int] = {}
        for tokens in token_lists:
            key = (tokens[0], len(tokens))
            counts[key] = counts.get(key, 0) + 1
        groups: dict[tuple[str, int], int] = {}
        labels = []
        templates = []
        for tokens in token_lists:
            key = (tokens[0], len(tokens))
            if counts[key] < 2:
                labels.append(OUTLIER)
                continue
            if key not in groups:
                groups[key] = len(templates)
                templates.append([tokens[0]] + ["*"] * (len(tokens) - 1))
            labels.append(groups[key])
        return Clustering(labels=labels, templates=templates)


def test_outlier_retry_recovers_rare_events():
    # Each event appears once per flush; only by re-buffering refused
    # lines across flushes does the pair ever meet in one batch.
    engine = StreamingParser(
        _NoSingletonParser, flush_size=2, max_flush_retries=3
    )
    lines = ["alpha one", "beta one", "alpha two", "beta two"]
    for content in lines:
        engine.feed(LogRecord(content=content))
    engine.finalize()
    result = engine.result()
    assert ParseResult.OUTLIER_EVENT_ID not in result.assignments
    assert result.assignments[0] == result.assignments[2]
    assert result.assignments[1] == result.assignments[3]


def test_snapshot_reports_pending_then_finalize_resolves():
    engine = StreamingParser(_FirstTokenParser, flush_size=100)
    engine.feed(LogRecord(content="alpha one"))
    snapshot = engine.result()
    assert snapshot.assignments == [PENDING_EVENT_ID]
    engine.finalize()
    assert PENDING_EVENT_ID not in engine.result().assignments


def test_live_matrix_matches_batch_matrix():
    dataset = generate_hdfs_sessions(80, seed=SEED)
    engine = StreamingParser(
        partial(make_parser, "IPLoM"), flush_policy="prefix", flush_size=300
    )
    session = ParseSession(engine)
    session.consume(dataset.records, report=lambda c: None)
    result = session.finalize()
    live = session.matrix()
    batch = build_event_matrix(result)

    # Compare as (session, event-template) -> count dictionaries so
    # column order and event numbering cannot mask a real difference.
    def cells(matrix, template_of):
        out = {}
        for i, sid in enumerate(matrix.session_ids):
            for j, eid in enumerate(matrix.event_ids):
                count = matrix.matrix[i, j]
                if count:
                    out[(sid, template_of[eid])] = count
        return out

    templates = {e.event_id: e.template for e in result.events}
    templates[ParseResult.OUTLIER_EVENT_ID] = ParseResult.OUTLIER_EVENT_ID
    assert cells(live, templates) == cells(batch, templates)


def test_unretained_delta_keeps_no_per_line_state():
    engine = StreamingParser(
        _FirstTokenParser, flush_size=64, retain=False
    )
    records = generate_dataset(get_dataset_spec("BGL"), 3000, seed=SEED).records
    for record in records:
        engine.feed(record)
    engine.finalize()
    assert engine.counters.lines == 3000
    assert engine.counters.pending == 0
    assert sum(engine.event_counts().values()) == 3000
    assert engine._records == [] and engine._assignments == []


def test_warmed_cache_hit_rate_exceeds_90_percent_on_bgl():
    engine = StreamingParser(
        partial(make_parser, "IPLoM"), flush_size=512, retain=False
    )
    spec = get_dataset_spec("BGL")
    for record in generate_dataset(spec, 20_000, seed=7).records:
        engine.feed(record)
    engine.finalize()
    assert engine.counters.hit_rate > 0.90
