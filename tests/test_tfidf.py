"""Tests for TF-IDF weighting of the event count matrix."""

import numpy as np
import pytest

from repro.common.errors import MiningError
from repro.mining.tfidf import tf_idf_transform


class TestTfIdf:
    def test_ubiquitous_column_zeroed(self):
        matrix = np.array([[1.0, 1.0], [2.0, 0.0]])
        weighted = tf_idf_transform(matrix)
        # Column 0 occurs in every session -> idf = log(1) = 0.
        assert weighted[:, 0] == pytest.approx([0.0, 0.0])

    def test_rare_column_upweighted(self):
        matrix = np.zeros((10, 2))
        matrix[:, 0] = 1.0  # everywhere
        matrix[0, 1] = 1.0  # one session only
        weighted = tf_idf_transform(matrix)
        assert weighted[0, 1] == pytest.approx(np.log(10))

    def test_zero_column_stays_zero(self):
        matrix = np.array([[1.0, 0.0], [1.0, 0.0]])
        weighted = tf_idf_transform(matrix)
        assert weighted[:, 1] == pytest.approx([0.0, 0.0])

    def test_counts_scale_linearly(self):
        matrix = np.zeros((4, 1))
        matrix[0, 0] = 3.0
        matrix[1, 0] = 1.0
        weighted = tf_idf_transform(matrix)
        assert weighted[0, 0] == pytest.approx(3 * weighted[1, 0])

    def test_original_not_mutated(self):
        matrix = np.ones((3, 3))
        copy = matrix.copy()
        tf_idf_transform(matrix)
        assert (matrix == copy).all()

    def test_empty_matrix(self):
        weighted = tf_idf_transform(np.zeros((0, 3)))
        assert weighted.shape == (0, 3)

    def test_rejects_non_2d(self):
        with pytest.raises(MiningError):
            tf_idf_transform(np.zeros(5))
