"""Tests for the deterministic fault-injection harness and recovery paths."""

from __future__ import annotations

import os
from functools import partial

import pytest

from repro.common.errors import DatasetError, WorkerCrashError
from repro.common.types import LogRecord
from repro.datasets import (
    generate_dataset,
    get_dataset_spec,
    read_raw_log,
    write_raw_log,
)
from repro.parsers import make_parser
from repro.parsers.parallel import ChunkedParallelParser
from repro.resilience import (
    ChunkFault,
    FlakyFactory,
    InjectedFault,
    QuarantineSink,
    corrupt_raw_file,
    corrupt_records,
)
from repro.resilience.faults import KIND_BINARY, KIND_TRUNCATED
from repro.streaming import StreamingParser

#: CI replays this suite under a matrix of fault seeds; every assertion
#: below that uses FAULT_SEED must hold for *any* seed (assertions tied
#: to one specific corruption draw keep their own literal seeds).
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "13"))

#: CI also replays the suite with different stream parsers; every fault
#: path below must recover identically no matter which backend parses.
STREAM_PARSER = os.environ.get("REPRO_STREAM_PARSER", "IPLoM")


def _records(n=60):
    return [LogRecord(content=f"request {i} served in {i * 3} ms") for i in range(n)]


def _parser_factory():
    return make_parser(STREAM_PARSER)


# ----------------------------------------------------------------------
# Record corruption
# ----------------------------------------------------------------------


class TestCorruptRecords:
    def test_same_seed_same_corruption(self):
        a = [
            r.content
            for r in corrupt_records(_records(), seed=FAULT_SEED, every=5)
        ]
        b = [
            r.content
            for r in corrupt_records(_records(), seed=FAULT_SEED, every=5)
        ]
        assert a == b

    def test_different_seed_differs(self):
        a = [
            r.content
            for r in corrupt_records(_records(), seed=FAULT_SEED, every=5)
        ]
        b = [
            r.content
            for r in corrupt_records(_records(), seed=FAULT_SEED + 1, every=5)
        ]
        assert a != b

    def test_every_kth_record_is_touched(self):
        originals = _records(20)
        mutated = list(corrupt_records(originals, seed=1, every=4))
        changed = [
            i
            for i, (orig, new) in enumerate(zip(originals, mutated))
            if orig.content != new.content
        ]
        assert changed == [3, 7, 11, 15, 19]

    def test_binary_kind_injects_control_bytes(self):
        mutated = list(
            corrupt_records(_records(4), seed=1, every=2, kinds=[KIND_BINARY])
        )
        assert "\x00" in mutated[1].content

    def test_oversized_kind_pads_past_limit(self):
        mutated = list(
            corrupt_records(
                _records(2), seed=1, every=2, kinds=["oversized"], oversize_to=100
            )
        )
        assert len(mutated[1].content) > 100

    def test_truncated_kind_stays_printable(self):
        mutated = list(
            corrupt_records(_records(2), seed=1, every=2, kinds=[KIND_TRUNCATED])
        )
        victim = mutated[1].content
        assert victim == _records(2)[1].content[: len(victim)]

    def test_metadata_is_preserved(self):
        records = [
            LogRecord(content="x" * 10, session_id="s9", truth_event="E1")
        ]
        mutated = list(corrupt_records(records, seed=1, every=1))
        assert mutated[0].session_id == "s9"
        assert mutated[0].truth_event == "E1"

    def test_rejects_bad_parameters(self):
        from repro.common.errors import ValidationError

        with pytest.raises(ValidationError):
            list(corrupt_records(_records(), seed=1, every=0))
        with pytest.raises(ValidationError):
            list(corrupt_records(_records(), seed=1, every=2, kinds=["nope"]))


class TestCorruptRawFile:
    def test_corrupts_bytes_and_loader_quarantines(self, tmp_path):
        src = str(tmp_path / "clean.log")
        dst = str(tmp_path / "dirty.log")
        write_raw_log(_records(40), src)
        count = corrupt_raw_file(src, dst, seed=FAULT_SEED, every=10)
        assert count == 4
        sink = QuarantineSink()
        loaded = read_raw_log(
            dst, policy="quarantine", quarantine=sink, max_line_bytes=50_000
        )
        # Every corrupted line is either undecodable or oversized.
        assert len(loaded) + len(sink) == 40
        assert len(sink) == 4
        assert set(sink.reasons()) <= {"undecodable", "oversized"}
        # Byte offsets point at real line starts in the dirty file.
        with open(dst, "rb") as handle:
            data = handle.read()
        for record in sink:
            assert record.byte_offset == 0 or (
                data[record.byte_offset - 1 : record.byte_offset] == b"\n"
            )

    def test_same_seed_same_file(self, tmp_path):
        src = str(tmp_path / "clean.log")
        write_raw_log(_records(30), src)
        a, b = str(tmp_path / "a.log"), str(tmp_path / "b.log")
        corrupt_raw_file(src, a, seed=FAULT_SEED, every=7)
        corrupt_raw_file(src, b, seed=FAULT_SEED, every=7)
        assert open(a, "rb").read() == open(b, "rb").read()


# ----------------------------------------------------------------------
# Streaming engine screening
# ----------------------------------------------------------------------


class TestEngineErrorPolicies:
    def _engine(self, **kwargs):
        return StreamingParser(
            _parser_factory, flush_policy="prefix", flush_size=16, **kwargs
        )

    def test_quarantine_policy_matches_clean_only_parse(self):
        clean = _records(40)
        dirty = list(
            corrupt_records(
                clean, seed=FAULT_SEED, every=8, kinds=[KIND_BINARY]
            )
        )
        sink = QuarantineSink()
        engine = self._engine(error_policy="quarantine", quarantine=sink)
        for record in dirty:
            engine.feed(record)
        engine.finalize()
        survivors = [r for d, r in zip(dirty, clean) if "\x00" not in d.content]
        assert engine.counters.rejected == 40 - len(survivors)
        assert len(sink) == engine.counters.rejected
        # The dirty records never entered the stream: result matches a
        # batch parse of the surviving records alone.
        reference = _parser_factory().parse(
            [d for d in dirty if "\x00" not in d.content]
        )
        assert (
            engine.result().events_file_lines()
            == reference.events_file_lines()
        )

    def test_feed_returns_minus_one_for_rejected(self):
        engine = self._engine(error_policy="skip")
        assert engine.feed(LogRecord(content="fine line")) == 0
        assert engine.feed(LogRecord(content="bad\x00line")) == -1
        assert engine.feed(LogRecord(content="fine again")) == 1
        assert engine.counters.rejected == 1

    def test_raise_policy_propagates(self):
        engine = self._engine(error_policy="raise")
        with pytest.raises(DatasetError):
            engine.feed(LogRecord(content="bad\x00line"))

    def test_max_record_len_enforced(self):
        engine = self._engine(error_policy="skip", max_record_len=50)
        assert engine.feed(LogRecord(content="x" * 51)) == -1
        assert engine.counters.rejected == 1

    def test_no_policy_keeps_legacy_behavior(self):
        engine = self._engine()
        # Without a policy nothing is screened: dirty content streams
        # straight through, exactly as before the hardening existed.
        assert engine.feed(LogRecord(content="bad\x00line")) == 0
        assert engine.counters.rejected == 0


# ----------------------------------------------------------------------
# Flaky parser factories
# ----------------------------------------------------------------------


class TestFlakyFactory:
    def test_fails_exactly_n_times_then_recovers(self, toy_records):
        factory = FlakyFactory(_parser_factory, fail_times=2)
        with pytest.raises(InjectedFault):
            factory().parse(toy_records)
        with pytest.raises(InjectedFault):
            factory().parse(toy_records)
        result = factory().parse(toy_records)
        assert result.assignments

    def test_reports_inner_name_by_default(self):
        assert FlakyFactory(_parser_factory)().name == STREAM_PARSER
        assert FlakyFactory(_parser_factory, name="X")().name == "X"


# ----------------------------------------------------------------------
# Worker-crash recovery in chunked dispatch
# ----------------------------------------------------------------------


def _no_sleep(_seconds):
    return None


class TestChunkRecovery:
    def _baseline(self, records, chunk_size=20):
        return ChunkedParallelParser(
            _parser_factory, chunk_size=chunk_size
        ).parse(records)

    def test_raise_fault_is_redispatched(self):
        records = _records(60)
        baseline = self._baseline(records)
        parser = ChunkedParallelParser(
            _parser_factory,
            chunk_size=20,
            workers=2,
            fault=ChunkFault(chunks=(1,), attempts=1, mode="raise"),
            sleep=_no_sleep,
        )
        result = parser.parse(records)
        assert result.events_file_lines() == baseline.events_file_lines()
        report = parser.last_recovery
        assert report.redispatched_chunks == {1}
        assert len(report.failures) == 1
        assert "InjectedFault" in report.failures[0].error

    def test_dead_worker_process_is_survived(self):
        # mode="exit" hard-kills the worker mid-chunk: the pool breaks,
        # the wave fails, and a fresh pool parses the chunk cleanly.
        records = _records(60)
        baseline = self._baseline(records)
        parser = ChunkedParallelParser(
            _parser_factory,
            chunk_size=20,
            workers=2,
            fault=ChunkFault(chunks=(0,), attempts=1, mode="exit"),
            sleep=_no_sleep,
        )
        result = parser.parse(records)
        assert result.events_file_lines() == baseline.events_file_lines()
        assert parser.last_recovery.redispatched_chunks

    def test_hung_worker_is_abandoned_on_timeout(self):
        records = _records(40)
        baseline = self._baseline(records)
        parser = ChunkedParallelParser(
            _parser_factory,
            chunk_size=20,
            workers=2,
            chunk_timeout=0.5,
            fault=ChunkFault(
                chunks=(1,), attempts=1, mode="hang", hang_seconds=30.0
            ),
            sleep=_no_sleep,
        )
        result = parser.parse(records)
        assert result.events_file_lines() == baseline.events_file_lines()
        timeouts = [
            a for a in parser.last_recovery.attempts if a.status == "timeout"
        ]
        assert len(timeouts) == 1
        assert "abandoned" in timeouts[0].error

    def test_persistent_fault_falls_back_in_process(self):
        records = _records(60)
        baseline = self._baseline(records)
        parser = ChunkedParallelParser(
            _parser_factory,
            chunk_size=20,
            workers=2,
            max_chunk_attempts=2,
            fault=ChunkFault(chunks=(2,), attempts=99, mode="raise"),
            sleep=_no_sleep,
        )
        result = parser.parse(records)
        assert result.events_file_lines() == baseline.events_file_lines()
        report = parser.last_recovery
        assert report.fallback_chunks == {2}
        assert "rescued in-process" in report.describe()

    def test_fault_that_survives_fallback_raises_worker_crash(self):
        records = _records(40)
        parser = ChunkedParallelParser(
            _parser_factory,
            chunk_size=20,
            workers=1,
            max_chunk_attempts=2,
            fault=ChunkFault(
                chunks=(0,), attempts=99, mode="raise", worker_only=False
            ),
            sleep=_no_sleep,
        )
        with pytest.raises(WorkerCrashError, match="in-process fallback"):
            parser.parse(records)

    def test_fault_schedule_is_deterministic(self):
        fault = ChunkFault(chunks=(0, 2), attempts=2, mode="raise")
        assert fault.should_fire(0, 1, in_process=False)
        assert fault.should_fire(2, 2, in_process=False)
        assert not fault.should_fire(2, 3, in_process=False)
        assert not fault.should_fire(1, 1, in_process=False)
        assert not fault.should_fire(0, 1, in_process=True)  # worker_only

    def test_fault_free_run_reports_clean(self):
        records = _records(40)
        parser = ChunkedParallelParser(_parser_factory, chunk_size=20)
        parser.parse(records)
        assert parser.last_recovery.failures == []
        assert (
            parser.last_recovery.describe()
            == "all chunks parsed on first dispatch"
        )


@pytest.mark.parametrize("dataset", ["HDFS", "BGL"])
def test_end_to_end_faulted_stream_matches_clean_subset(dataset, tmp_path):
    """Acceptance: corrupt stream + quarantine == batch parse of survivors."""
    records = generate_dataset(get_dataset_spec(dataset), 300, seed=9).records
    dirty = list(
        corrupt_records(
            records,
            seed=FAULT_SEED,
            every=25,
            kinds=[KIND_BINARY, "oversized"],
        )
    )
    sink = QuarantineSink(str(tmp_path / "q.jsonl"))
    engine = StreamingParser(
        _parser_factory,
        flush_policy="prefix",
        flush_size=64,
        error_policy="quarantine",
        quarantine=sink,
        max_record_len=2000,
    )
    for record in dirty:
        engine.feed(record)
    engine.finalize()
    sink.close()
    assert engine.counters.rejected > 0
    assert os.path.exists(str(tmp_path / "q.jsonl"))
    survivors = [
        r
        for r in dirty
        if "\x00" not in r.content and len(r.content) <= 2000
    ]
    reference = _parser_factory().parse(survivors)
    assert (
        engine.result().events_file_lines() == reference.events_file_lines()
    )
