"""Fault-injected certification of the multi-tenant service.

Three contracts from the service model:

* **Noisy-neighbor isolation** — seeded connection faults plus a
  corrupt flood on tenant A must leave tenants B and C with artifacts
  *byte-identical* to a fault-free run that never saw A at all
  (certified through ``verify-run --against``), while A's garbage sits
  in A's own quarantine with provenance.
* **Graceful drain** — SIGTERM against a live ``serve`` subprocess
  finalizes every tenant's checkpoint and manifest and exits 0; a
  resumed service replaying the full stream continues with no
  duplicates and no loss.
* **Interrupted stream** — SIGTERM against a ``stream`` subprocess
  exits ``128+15`` with a finalized checkpoint and manifest, and a
  ``--resume`` run completes cleanly from it.

The connection-fault schedule is seeded; CI sweeps ``REPRO_CONN_SEED``
so different disconnect/partial/slow/storm scripts all certify the
same invariants.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.parsers import make_parser
from repro.resilience import (
    ConnectionFault,
    FaultyLineSender,
    ProcessFault,
    connection_fault_schedule,
    diff_manifests,
    verify_manifest,
)
from repro.resilience.faults import CONN_KINDS, PROC_KILL
from repro.resilience.durability import read_jsonl_payloads
from repro.service import IngestionService, LineServer, replay_lines

#: CI sweeps this; local runs use the default.
CONN_SEED = int(os.environ.get("REPRO_CONN_SEED", "7"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _env_with_src() -> dict:
    env = os.environ.copy()
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _factory():
    return make_parser("Drain")


def _tenant_lines(tenant: str, n: int, start: int = 0) -> list[str]:
    return [
        f"{tenant}\tConnection from 10.0.{start + i}.{i % 7} "
        f"port {3000 + start + i} established"
        for i in range(n)
    ]


class TestConnectionFaultSchedule:
    def test_deterministic_for_a_seed(self):
        first = connection_fault_schedule(CONN_SEED, n=4, span=200)
        second = connection_fault_schedule(CONN_SEED, n=4, span=200)
        assert first == second

    def test_different_seeds_differ(self):
        assert connection_fault_schedule(7, n=4, span=200) != (
            connection_fault_schedule(101, n=4, span=200)
        )

    def test_faults_land_in_disjoint_windows(self):
        schedule = connection_fault_schedule(CONN_SEED, n=4, span=200)
        assert len(schedule) == 4
        positions = [fault.at_line for fault in schedule]
        assert positions == sorted(positions)
        for index, fault in enumerate(schedule):
            assert index * 50 <= fault.at_line < (index + 1) * 50
            assert fault.kind in CONN_KINDS
            assert 0.0 < fault.cut_fraction < 1.0

    def test_sender_script_rejects_duplicate_lines(self):
        from repro.common.errors import ValidationError
        from repro.resilience.faults import CONN_DISCONNECT

        faults = [
            ConnectionFault(kind=CONN_DISCONNECT, at_line=3),
            ConnectionFault(kind=CONN_DISCONNECT, at_line=3),
        ]
        with pytest.raises(ValidationError):
            FaultyLineSender("127.0.0.1", 1, faults)


class TestNoisyNeighborIsolation:
    """Tenant A floods and faults; B and C must not notice."""

    B_LINES = 80
    C_LINES = 60

    def _clean_run(self, data_dir: str) -> dict:
        """Fault-free reference: only B and C, in-process."""
        service = IngestionService(str(data_dir), _factory)
        replay_lines(
            service,
            _tenant_lines("tenant-b", self.B_LINES)
            + _tenant_lines("tenant-c", self.C_LINES),
        )
        return service.drain()

    def _faulty_run(self, data_dir: str) -> tuple[dict, dict]:
        """B and C clean over TCP; A floods with faults + corruption."""
        service = IngestionService(str(data_dir), _factory)
        with LineServer(service) as server:
            addr = (server.host, server.port)
            # A: seeded connection faults + corrupt flood.  Every third
            # line carries control bytes the screen rejects; the rest
            # interleave with the connection fault script.
            a_lines = []
            for i in range(90):
                if i % 3 == 0:
                    a_lines.append(f"tenant-a\tcorrupt \x00\x01 blob {i}")
                else:
                    a_lines.append(f"tenant-a\tflood line {i} from attacker")
            schedule = connection_fault_schedule(
                CONN_SEED, n=3, span=len(a_lines), delay_seconds=0.01
            )
            sender = FaultyLineSender(*addr, schedule)
            stats = sender.send_lines(a_lines)

            # B and C: ordinary well-behaved clients.
            for tenant, count in (
                ("tenant-b", self.B_LINES), ("tenant-c", self.C_LINES),
            ):
                conn = socket.create_connection(addr, timeout=5)
                payload = "".join(
                    line + "\n" for line in _tenant_lines(tenant, count)
                )
                conn.sendall(payload.encode())
                conn.close()

            deadline = time.monotonic() + 20
            expected_min = self.B_LINES + self.C_LINES
            while time.monotonic() < deadline:
                shards = service.tenants()
                if (
                    "tenant-b" in shards
                    and "tenant-c" in shards
                    and service.shard("tenant-b").seen >= self.B_LINES
                    and service.shard("tenant-c").seen >= self.C_LINES
                ):
                    break
                time.sleep(0.05)
            assert service.submitted >= expected_min
        return service.drain(), stats

    def test_b_and_c_byte_identical_to_fault_free_run(self, tmp_path):
        clean_dir = tmp_path / "clean"
        faulty_dir = tmp_path / "faulty"
        clean = self._clean_run(clean_dir)
        faulty, stats = self._faulty_run(faulty_dir)

        # The fault script actually fired.
        assert stats["fired"] >= 1

        # B and C consumed their full streams in both runs.
        for summary in (clean, faulty):
            assert summary["tenants"]["tenant-b"]["lines"] == self.B_LINES
            assert summary["tenants"]["tenant-c"]["lines"] == self.C_LINES

        # Certification: manifests agree artifact-by-artifact.  The
        # checkpoint is excluded — it embeds the engine's template
        # cache, whose LRU order legitimately differs — but the parse
        # outputs (.events/.structured) must match to the byte.
        for tenant in ("tenant-b", "tenant-c"):
            code = main(
                [
                    "verify-run",
                    str(faulty_dir / tenant / "out.manifest.json"),
                    "--against",
                    str(clean_dir / tenant / "out.manifest.json"),
                    "--ignore", "out.checkpoint.json",
                ]
            )
            assert code == 0, f"{tenant} diverged from the fault-free run"

        # A's garbage is in A's own quarantine, with provenance.
        a_quarantine = faulty_dir / "tenant-a" / "out.quarantine.jsonl"
        assert a_quarantine.exists()
        payloads = read_jsonl_payloads(str(a_quarantine))
        assert payloads, "corrupt flood left no quarantine records"
        assert all(
            record["source"] == "tenant:tenant-a" for record in payloads
        )
        # Nothing of A's leaked into B's or C's space.
        for tenant in ("tenant-b", "tenant-c"):
            assert not (
                faulty_dir / tenant / "out.quarantine.jsonl"
            ).exists()
            structured = (faulty_dir / tenant / "out.structured").read_text()
            assert "attacker" not in structured
            assert "corrupt" not in structured

    def test_faulty_sender_semantics_accounted(self, tmp_path):
        """Partial-cut lines are lost to the tail, disconnect resends."""
        service = IngestionService(str(tmp_path), _factory)
        with LineServer(service) as server:
            schedule = connection_fault_schedule(
                CONN_SEED, n=3, span=60, delay_seconds=0.01
            )
            sender = FaultyLineSender(server.host, server.port, schedule)
            stats = sender.send_lines(_tenant_lines("tenant-a", 60))
            deadline = time.monotonic() + 10
            while (
                time.monotonic() < deadline
                and service.submitted < stats["sent"]
            ):
                time.sleep(0.05)
        summary = service.drain()
        shard = summary["tenants"]["tenant-a"]
        # Whole lines that reached the wire were all consumed; lines a
        # partial-cut destroyed are lost at the *sender*, and the torn
        # fragments became protocol quarantine records, never tenant
        # records.
        assert shard["lines"] == 60 - stats["lost"]
        assert stats["fired"] == 3


class TestGracefulDrainSubprocess:
    """Kill a real serve process; certify drain + resume."""

    def _serve(self, data_dir: str, *extra: str) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "Drain",
                str(data_dir), *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env_with_src(),
            cwd=REPO_ROOT,
        )

    def _send(self, port: int, lines: list[str]) -> None:
        conn = socket.create_connection(("127.0.0.1", port), timeout=10)
        conn.sendall("".join(line + "\n" for line in lines).encode())
        conn.close()

    def test_sigterm_drains_and_resumed_serve_continues(self, tmp_path):
        data = tmp_path / "data"
        part1 = _tenant_lines("alpha", 40) + _tenant_lines("beta", 30)
        part2 = _tenant_lines("alpha", 20, start=40) + _tenant_lines(
            "beta", 25, start=30
        )

        proc = self._serve(data)
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving on "), banner
            port = int(banner.rsplit(":", 1)[1])
            self._send(port, part1)
            time.sleep(1.0)  # let the reader threads consume
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        assert "shutdown requested; draining" in out
        for tenant in ("alpha", "beta"):
            assert (data / tenant / "out.checkpoint.json").exists()
            assert (data / tenant / "out.manifest.json").exists()
            assert main(
                ["verify-run", str(data / tenant / "out.manifest.json")]
            ) == 0

        # Resume: the at-least-once source replays the FULL stream;
        # the adopted shards skip what their checkpoints already hold.
        replay = tmp_path / "full_stream.log"
        replay.write_text(
            "".join(line + "\n" for line in part1 + part2)
        )
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve", "Drain",
                str(data), "--replay", str(replay),
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=_env_with_src(),
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stdout
        assert "adopted 2 tenant(s)" in completed.stdout
        assert "replayed=" in completed.stdout

        # No duplicates, no loss: exactly the full per-tenant streams.
        alpha = (data / "alpha" / "out.structured").read_text().splitlines()
        beta = (data / "beta" / "out.structured").read_text().splitlines()
        assert len(alpha) == 60
        assert len(beta) == 55

    def test_drain_after_exits_zero_without_signal(self, tmp_path):
        data = tmp_path / "data"
        lines = _tenant_lines("alpha", 25)
        proc = self._serve(data, "--drain-after", "25")
        try:
            banner = proc.stdout.readline()
            port = int(banner.rsplit(":", 1)[1])
            self._send(port, lines)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        assert "shutdown requested" not in out
        assert (data / "alpha" / "out.manifest.json").exists()


class TestInterruptedStreamSubprocess:
    """SIGTERM against ``stream``: checkpoint + manifest, exit 143."""

    def test_sigterm_finalizes_and_resume_completes(self, tmp_path):
        checkpoint = tmp_path / "stream.ckpt"
        manifest = tmp_path / "run.manifest.json"
        argv = [
            sys.executable, "-m", "repro", "stream", "Drain",
            "--dataset", "HDFS", "--size", "120000", "--seed", "7",
            "--checkpoint", str(checkpoint),
            "--checkpoint-every", "2000",
            "--manifest-out", str(manifest),
        ]
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env_with_src(),
            cwd=REPO_ROOT,
        )
        try:
            time.sleep(2.0)  # mid-stream
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 128 + signal.SIGTERM, out
        assert "shutdown requested by SIGTERM" in out
        assert checkpoint.exists()
        # The finally-block exporter still committed the manifest, and
        # it verifies: interrupted runs leave auditable artifacts.
        assert manifest.exists()
        assert main(["verify-run", str(manifest)]) == 0
        consumed = json.loads(checkpoint.read_text())["records_consumed"]
        assert 0 < consumed < 120000

        # The interrupted run's checkpoint resumes to completion.
        completed = subprocess.run(
            argv + ["--resume"],
            capture_output=True,
            text=True,
            timeout=300,
            env=_env_with_src(),
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stdout
        final = json.loads(checkpoint.read_text())["records_consumed"]
        assert final == 120000


class TestSigkillDuringDrain:
    """SIGKILL while draining: restart, resume, identical manifests.

    Process mode kills the *worker* exactly when it receives the drain
    request (the supervisor restarts it, careful-replays, and
    re-drains); thread mode SIGKILLs the whole serve process — no
    drain runs at all — and a resumed serve finalizes from the
    checkpoints.  Both must converge on artifacts whose manifests
    match a fault-free run (`verify_manifest` + `diff_manifests`).
    """

    def _manifests_match(self, got: str, want: str) -> None:
        assert verify_manifest(got).ok
        assert verify_manifest(want).ok
        differences = diff_manifests(
            got, want, ignore=("out.checkpoint.json",)
        )
        assert differences == [], differences

    def test_process_mode_worker_killed_mid_drain(self, tmp_path):
        lines = _tenant_lines("alpha", 40) + _tenant_lines("beta", 30)

        calm_dir = tmp_path / "calm"
        calm = IngestionService(
            str(calm_dir), _factory, parser_name="Drain"
        )
        replay_lines(calm, lines)
        calm.drain()

        faulty_dir = tmp_path / "faulty"
        service = IngestionService(
            str(faulty_dir), _factory, parser_name="Drain",
            isolation="process",
            worker_kwargs=dict(
                faults={
                    "alpha": (ProcessFault(PROC_KILL, at_drain=True),)
                },
                checkpoint_every=8,
                heartbeat_interval=0.02,
                watchdog=0.4,
            ),
        )
        replay_lines(service, lines)
        summary = service.drain()
        assert summary["tenants"]["alpha"]["restarts"] == 1
        assert summary["tenants"]["beta"]["restarts"] == 0
        for tenant in ("alpha", "beta"):
            self._manifests_match(
                str(faulty_dir / tenant / "out.manifest.json"),
                str(calm_dir / tenant / "out.manifest.json"),
            )

    def test_thread_mode_serve_killed_then_resumed(self, tmp_path):
        lines = _tenant_lines("alpha", 40) + _tenant_lines("beta", 30)

        calm_dir = tmp_path / "calm"
        calm = IngestionService(
            str(calm_dir), _factory, parser_name="Drain"
        )
        replay_lines(calm, lines)
        calm.drain()

        data = tmp_path / "data"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "Drain",
                str(data),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env_with_src(),
            cwd=REPO_ROOT,
        )
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving on "), banner
            port = int(banner.rsplit(":", 1)[1])
            conn = socket.create_connection(("127.0.0.1", port), timeout=10)
            conn.sendall(
                "".join(line + "\n" for line in lines).encode()
            )
            conn.close()
            time.sleep(1.0)  # let the shards consume
            proc.send_signal(signal.SIGKILL)
            proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == -signal.SIGKILL

        # No drain ran; the at-least-once source replays the full
        # stream and the adopted shards skip what checkpoints cover.
        replay = tmp_path / "full_stream.log"
        replay.write_text("".join(line + "\n" for line in lines))
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve", "Drain",
                str(data), "--replay", str(replay),
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=_env_with_src(),
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stdout
        for tenant in ("alpha", "beta"):
            self._manifests_match(
                str(data / tenant / "out.manifest.json"),
                str(calm_dir / tenant / "out.manifest.json"),
            )

    def test_process_mode_subprocess_sigterm_drains_workers(self, tmp_path):
        """The serve subprocess path: SIGTERM with --isolation process
        joins every worker and finalizes every manifest."""
        data = tmp_path / "data"
        lines = _tenant_lines("alpha", 30) + _tenant_lines("beta", 20)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "Drain",
                str(data), "--isolation", "process",
                "--checkpoint-every", "8",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env_with_src(),
            cwd=REPO_ROOT,
        )
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving on "), banner
            port = int(banner.rsplit(":", 1)[1])
            conn = socket.create_connection(("127.0.0.1", port), timeout=10)
            conn.sendall("".join(line + "\n" for line in lines).encode())
            conn.close()
            time.sleep(1.5)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        assert "shutdown requested; draining" in out
        for tenant in ("alpha", "beta"):
            manifest = data / tenant / "out.manifest.json"
            assert manifest.exists(), out
            assert verify_manifest(str(manifest)).ok
        structured = (data / "alpha" / "out.structured").read_text()
        assert len(structured.splitlines()) == 30
