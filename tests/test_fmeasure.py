"""Unit + property tests for the pairwise F-measure metric."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import EvaluationError
from repro.evaluation.fmeasure import (
    f_measure,
    pairwise_agreement,
    singletonize_outliers,
)

labelings = st.lists(
    st.sampled_from(["a", "b", "c", "d"]), min_size=2, max_size=60
)


class TestPairwiseAgreement:
    def test_perfect_clustering(self):
        agreement = pairwise_agreement(["x", "x", "y"], ["p", "p", "q"])
        assert agreement.precision == 1.0
        assert agreement.recall == 1.0
        assert agreement.f_measure == 1.0

    def test_everything_merged_hurts_precision(self):
        agreement = pairwise_agreement(["x"] * 4, ["p", "p", "q", "q"])
        assert agreement.recall == 1.0
        assert agreement.precision == pytest.approx(2 / 6)

    def test_everything_split_hurts_recall(self):
        agreement = pairwise_agreement(
            ["a", "b", "c", "d"], ["p", "p", "q", "q"]
        )
        # No pairs claimed -> vacuous precision, zero recall.
        assert agreement.precision == 1.0
        assert agreement.recall == 0.0
        assert agreement.f_measure == 0.0

    def test_known_mixed_case(self):
        predicted = ["x", "x", "x", "y"]
        truth = ["p", "p", "q", "q"]
        agreement = pairwise_agreement(predicted, truth)
        assert agreement.true_positives == 1
        assert agreement.predicted_pairs == 3
        assert agreement.truth_pairs == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            pairwise_agreement(["a"], ["a", "b"])

    def test_empty_inputs_are_vacuously_perfect(self):
        agreement = pairwise_agreement([], [])
        assert agreement.f_measure == 1.0

    def test_all_singletons_self_compare_perfect(self):
        assert f_measure(["a", "b"], ["a", "b"]) == 1.0


class TestFMeasureProperties:
    @given(labelings)
    def test_self_comparison_is_perfect(self, labels):
        assert f_measure(labels, labels) == 1.0

    @given(labelings)
    def test_bounded(self, labels):
        truth = ["t" if i % 2 else "u" for i in range(len(labels))]
        assert 0.0 <= f_measure(labels, truth) <= 1.0

    @given(labelings)
    def test_label_renaming_invariant(self, labels):
        truth = ["t" if i % 3 else "u" for i in range(len(labels))]
        renamed = [f"renamed-{label}" for label in labels]
        assert f_measure(labels, truth) == f_measure(renamed, truth)

    @given(labelings)
    def test_symmetric_in_roles(self, labels):
        truth = ["t" if i % 2 else "u" for i in range(len(labels))]
        assert f_measure(labels, truth) == pytest.approx(
            f_measure(truth, labels)
        )


class TestSingletonizeOutliers:
    def test_outliers_become_unique(self):
        labels = ["E1", "OUTLIER", "OUTLIER", "E1"]
        result = singletonize_outliers(labels)
        assert result[0] == result[3] == "E1"
        assert result[1] != result[2]

    def test_no_outliers_identity(self):
        labels = ["E1", "E2"]
        assert singletonize_outliers(labels) == labels

    def test_improves_f_when_outliers_span_events(self):
        truth = ["a", "a", "b", "b"]
        predicted = ["OUTLIER", "OUTLIER", "OUTLIER", "OUTLIER"]
        merged = f_measure(predicted, truth)
        split = f_measure(singletonize_outliers(predicted), truth)
        assert merged < 1.0
        assert split == 0.0  # no pairs either way: recall 0
        # merged wrongly claims b-a pairs; split claims none.
        assert pairwise_agreement(predicted, truth).precision < 1.0
