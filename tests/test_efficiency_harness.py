"""Tests for the RQ2 efficiency harness (Fig. 2 machinery)."""

import pytest

from repro.common.errors import EvaluationError
from repro.evaluation.efficiency import EfficiencyPoint, measure_runtime
from repro.parsers import Iplom, Slct


class TestMeasureRuntime:
    def test_points_for_all_sizes(self):
        points = measure_runtime(
            Iplom, "Proxifier", sizes=[50, 100, 200], seed=1
        )
        assert [p.size for p in points] == [50, 100, 200]
        assert all(p.seconds is not None for p in points)

    def test_parser_and_dataset_recorded(self):
        points = measure_runtime(Iplom, "Proxifier", sizes=[50], seed=1)
        assert points[0].parser == "IPLoM"
        assert points[0].dataset == "Proxifier"

    def test_unsorted_sizes_rejected(self):
        with pytest.raises(EvaluationError):
            measure_runtime(Iplom, "Proxifier", sizes=[200, 100])

    def test_time_budget_skips_larger_sizes(self):
        points = measure_runtime(
            lambda: Slct(support=2),
            "Proxifier",
            sizes=[100, 200, 400],
            seed=1,
            time_budget=0.0,  # first measurement always "exceeds" it
        )
        assert points[0].seconds is not None
        assert points[1].skipped
        assert points[2].skipped

    def test_skipped_flag(self):
        point = EfficiencyPoint("P", "D", 100, None)
        assert point.skipped
        assert not EfficiencyPoint("P", "D", 100, 0.5).skipped

    def test_measured_on_prefix_of_same_generation(self):
        # Sizes are prefixes of one generated dataset, so repeated calls
        # are comparable run-to-run.
        a = measure_runtime(Iplom, "Proxifier", sizes=[100], seed=7)
        b = measure_runtime(Iplom, "Proxifier", sizes=[100], seed=7)
        assert a[0].size == b[0].size
