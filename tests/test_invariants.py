"""Tests for invariant mining over event count matrices."""

import numpy as np
import pytest

from repro.common.errors import MiningError
from repro.mining.event_matrix import EventCountMatrix
from repro.mining.invariants import (
    Invariant,
    mine_invariants,
    violating_sessions,
)


def _matrix(rows, events, sessions=None):
    rows = np.array(rows, dtype=float)
    sessions = sessions or tuple(f"s{i}" for i in range(rows.shape[0]))
    return EventCountMatrix(
        matrix=rows, session_ids=tuple(sessions), event_ids=tuple(events)
    )


class TestMineInvariants:
    def test_finds_equality(self):
        counts = _matrix(
            [[2, 2], [3, 3], [1, 1], [4, 4], [2, 2]] * 3, ["open", "close"]
        )
        invariants = mine_invariants(counts, min_support=5)
        assert any(
            inv.kind == "eq" and {inv.left, inv.right} == {"open", "close"}
            for inv in invariants
        )

    def test_finds_ordering(self):
        counts = _matrix(
            [[3, 1], [2, 2], [5, 0], [4, 3], [2, 1]] * 3, ["sent", "acked"]
        )
        invariants = mine_invariants(counts, min_support=5)
        orderings = [inv for inv in invariants if inv.kind == "ge"]
        assert any(
            inv.left == "sent" and inv.right == "acked" for inv in orderings
        )

    def test_equality_shadows_ordering(self):
        counts = _matrix([[2, 2]] * 12, ["a", "b"])
        invariants = mine_invariants(counts, min_support=5)
        assert len(invariants) == 1
        assert invariants[0].kind == "eq"

    def test_min_support_filters(self):
        counts = _matrix([[1, 1]] * 3, ["a", "b"])
        assert mine_invariants(counts, min_support=10) == []

    def test_tolerance_allows_noise(self):
        rows = [[2, 2]] * 49 + [[2, 3]]
        counts = _matrix(rows, ["a", "b"])
        with_noise = mine_invariants(counts, min_support=5, tolerance=0.05)
        assert any(inv.kind == "eq" for inv in with_noise)
        strict = mine_invariants(counts, min_support=5, tolerance=0.0)
        # The single noisy row kills equality; only b >= a survives.
        assert all(inv.kind != "eq" for inv in strict)

    def test_unrelated_columns_produce_nothing(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 6, size=(60, 2))
        counts = _matrix(rows, ["a", "b"])
        invariants = mine_invariants(counts, min_support=5, tolerance=0.0)
        assert all(inv.kind != "eq" for inv in invariants)

    def test_invalid_parameters(self):
        counts = _matrix([[1, 1]] * 5, ["a", "b"])
        with pytest.raises(MiningError):
            mine_invariants(counts, min_support=0)
        with pytest.raises(MiningError):
            mine_invariants(counts, tolerance=1.0)


class TestInvariantHoldsFor:
    def test_eq(self):
        inv = Invariant("eq", "a", "b", 10, 0)
        assert inv.holds_for(2, 2)
        assert not inv.holds_for(2, 3)

    def test_ge(self):
        inv = Invariant("ge", "a", "b", 10, 0)
        assert inv.holds_for(3, 1)
        assert inv.holds_for(2, 2)
        assert not inv.holds_for(1, 2)

    def test_str(self):
        assert str(Invariant("eq", "a", "b", 1, 0)) == "count(a) == count(b)"


class TestViolatingSessions:
    def test_identifies_violators(self):
        counts = _matrix(
            [[2, 2], [2, 2], [3, 1]], ["recv", "term"],
            sessions=("good1", "good2", "bad"),
        )
        inv = Invariant("eq", "recv", "term", 3, 0)
        violations = violating_sessions(counts, [inv])
        assert set(violations) == {"bad"}

    def test_silent_sessions_skipped(self):
        counts = _matrix(
            [[0, 0], [1, 2]], ["a", "b"], sessions=("silent", "active")
        )
        inv = Invariant("eq", "a", "b", 2, 0)
        assert set(violating_sessions(counts, [inv])) == {"active"}

    def test_invariant_violation_detects_hdfs_anomalies(self):
        # Integration: receiving (E1) == terminating (E3) holds for
        # normal blocks and breaks for write failures.
        from repro.datasets import generate_hdfs_sessions
        from repro.mining.event_matrix import build_event_matrix
        from repro.parsers import OracleParser

        dataset = generate_hdfs_sessions(1000, seed=5)
        counts = build_event_matrix(OracleParser().parse(dataset.records))
        invariants = mine_invariants(counts, min_support=20, tolerance=0.03)
        pipeline = [
            inv
            for inv in invariants
            if inv.kind == "eq" and {inv.left, inv.right} == {"E1", "E3"}
        ]
        assert pipeline, "the E1 == E3 pipeline invariant must be mined"
        violations = violating_sessions(counts, pipeline)
        assert violations
        anomaly_hits = sum(
            1 for session in violations if dataset.labels[session]
        )
        assert anomaly_hits / len(violations) > 0.9
