"""Label-free cohesion/separation metric: units and properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import EventTemplate, LogRecord, ParseResult
from repro.evaluation.cohesion import (
    LabelFreeScore,
    cluster_cohesion,
    evaluate_label_free,
    message_similarity,
    score_result,
    template_similarity,
)

token = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=5,
)
token_list = st.lists(token, min_size=0, max_size=8)


def _result(groups: dict[str, list[str]], templates: dict[str, str]):
    """Build a ParseResult from event id -> member contents."""
    records, assignments = [], []
    for event_id, contents in groups.items():
        for content in contents:
            records.append(LogRecord(content=content))
            assignments.append(event_id)
    events = [
        EventTemplate(event_id=event_id, template=template)
        for event_id, template in templates.items()
    ]
    return ParseResult(
        events=events, assignments=assignments, records=records
    )


class TestSimilarities:
    @given(token_list)
    def test_identity(self, tokens):
        assert message_similarity(tokens, tokens) == 1.0

    @given(token_list, token_list)
    def test_symmetry_and_range(self, a, b):
        forward = message_similarity(a, b)
        assert forward == message_similarity(b, a)
        assert 0.0 <= forward <= 1.0

    def test_positional_for_equal_lengths(self):
        assert message_similarity(
            ["send", "block", "1"], ["send", "block", "2"]
        ) == pytest.approx(2 / 3)

    def test_lcs_for_unequal_lengths(self):
        assert message_similarity(
            ["a", "b", "c", "d"], ["a", "c"]
        ) == pytest.approx(0.5)

    def test_template_wildcard_matches_anything(self):
        assert template_similarity(
            ["send", "*", "done"], ["send", "xyz", "done"]
        ) == 1.0

    def test_disjoint_templates_score_zero(self):
        assert template_similarity(["a", "b"], ["c", "d"]) == 0.0


class TestClusterCohesion:
    def test_singleton_is_perfect(self):
        assert cluster_cohesion([["anything", "at", "all"]]) == 1.0

    def test_identical_members_are_perfect(self):
        assert cluster_cohesion([["same", "line"]] * 5) == 1.0

    def test_mixed_cluster_scores_low(self):
        score = cluster_cohesion(
            [["alpha", "beta"], ["gamma", "delta"], ["eps", "zeta"]]
        )
        assert score == 0.0

    def test_sampling_is_deterministic(self):
        members = [[f"tok{i}", "x"] for i in range(40)]
        kwargs = dict(max_pairs=10, seed=3, label="c1")
        assert cluster_cohesion(members, **kwargs) == cluster_cohesion(
            members, **kwargs
        )


class TestScoreResult:
    def test_perfect_parse_attains_upper_bound(self):
        # Exact-duplicate clusters with distinct templates: cohesion
        # and separation both hit their upper bound of 1.0.
        result = _result(
            {
                "E1": ["alpha beta"] * 4,
                "E2": ["gamma delta epsilon"] * 4,
            },
            {"E1": "alpha beta", "E2": "gamma delta epsilon"},
        )
        score = score_result(result, parser="X", dataset="D")
        assert score.cohesion == 1.0
        assert score.separation == 1.0
        assert score.score == 1.0

    def test_scores_bounded(self):
        result = _result(
            {
                "E1": ["send block 1", "send block 2", "recv ack now"],
                "E2": ["send block 9"],
            },
            {"E1": "send block *", "E2": "send block *"},
        )
        score = score_result(result)
        assert 0.0 <= score.cohesion <= 1.0
        assert 0.0 <= score.separation <= 1.0
        assert 0.0 <= score.score <= 1.0

    def test_duplicate_templates_kill_separation(self):
        result = _result(
            {"E1": ["send block 1"] * 3, "E2": ["send block 2"] * 3},
            {"E1": "send block *", "E2": "send block *"},
        )
        assert score_result(result).separation == 0.0

    def test_outliers_singletonized(self):
        records = [LogRecord(content="only line")]
        result = ParseResult(
            events=[],
            assignments=[ParseResult.OUTLIER_EVENT_ID],
            records=records,
        )
        score = score_result(result)
        assert score.clusters == 1
        assert score.cohesion == 1.0

    def test_empty_result(self):
        score = score_result(ParseResult())
        assert (score.cohesion, score.separation) == (1.0, 1.0)
        assert score.lines == 0

    @given(st.permutations(["E1", "E2", "E3"]))
    @settings(max_examples=10, deadline=None)
    def test_invariant_under_cluster_relabeling(self, new_ids):
        # Renaming event ids (and reordering the event list) is pure
        # bookkeeping; both scores must be bit-identical.
        groups = {
            "E1": ["send block 1", "send block 2"],
            "E2": ["open session alpha", "open session beta"],
            "E3": ["shutdown now please"],
        }
        templates = {
            "E1": "send block *",
            "E2": "open session *",
            "E3": "shutdown now please",
        }
        rename = dict(zip(["E1", "E2", "E3"], new_ids))
        base = score_result(_result(groups, templates), seed=5)
        relabeled = score_result(
            _result(
                {rename[k]: v for k, v in groups.items()},
                {rename[k]: v for k, v in templates.items()},
            ),
            seed=5,
        )
        assert base.cohesion == pytest.approx(relabeled.cohesion)
        assert base.separation == pytest.approx(relabeled.separation)

    def test_harmonic_mean_combination(self):
        score = LabelFreeScore(
            parser="X",
            dataset="D",
            lines=10,
            clusters=2,
            cohesion=0.8,
            separation=0.4,
        )
        assert score.score == pytest.approx(2 * 0.8 * 0.4 / 1.2)
        assert "cohesion" in score.describe()


class TestEvaluateLabelFree:
    def test_scores_tuned_parser(self):
        score = evaluate_label_free(
            "IPLoM", "Proxifier", sample_size=200, seed=1
        )
        assert score.parser == "IPLoM"
        assert score.dataset == "Proxifier"
        assert score.lines == 200
        assert 0.0 < score.score <= 1.0

    def test_falls_back_to_defaults_for_untuned_parser(self):
        # Passthrough has no TUNED_PARAMETERS entry; it must still be
        # scoreable (new backends before tuning).
        score = evaluate_label_free(
            "Passthrough", "Proxifier", sample_size=150, seed=1
        )
        assert score.cohesion == 1.0  # exact-signature clusters

    def test_deterministic_for_fixed_seed(self):
        first = evaluate_label_free(
            "Drain", "HDFS", sample_size=200, seed=9
        )
        second = evaluate_label_free(
            "Drain", "HDFS", sample_size=200, seed=9
        )
        assert first == second
