"""Tests for deployment verification by sequence comparison."""

from repro.common.types import LogRecord
from repro.mining.verification import (
    compare_deployments,
    event_sequences,
)
from repro.parsers import OracleParser


def _records(rows):
    return [
        LogRecord(content=content, session_id=session, truth_event=event)
        for session, event, content in rows
    ]


REFERENCE = _records(
    [
        ("r1", "start", "start job 1"),
        ("r1", "work", "work job 1 step 1"),
        ("r1", "end", "end job 1"),
        ("r2", "start", "start job 2"),
        ("r2", "end", "end job 2"),
    ]
)


class TestEventSequences:
    def test_sequences_grouped_and_ordered(self):
        parsed = OracleParser().parse(REFERENCE)
        sequences = event_sequences(parsed)
        assert sequences["r1"] == ("start", "work", "end")
        assert sequences["r2"] == ("start", "end")

    def test_sessionless_records_ignored(self):
        records = REFERENCE + _records([("", "noise", "noise line")])
        parsed = OracleParser().parse(records)
        assert "" not in event_sequences(parsed)


class TestCompareDeployments:
    def test_identical_deployments_report_nothing(self):
        parsed = OracleParser().parse(REFERENCE)
        delta = compare_deployments(parsed, parsed)
        assert delta.n_reported == 0
        assert delta.reduction_ratio == 1.0

    def test_new_sequence_reported(self):
        deployment = REFERENCE + _records(
            [
                ("d1", "start", "start job 9"),
                ("d1", "crash", "crash job 9 badly"),
            ]
        )
        reference = OracleParser().parse(REFERENCE)
        deployed = OracleParser().parse(deployment)
        delta = compare_deployments(reference, deployed)
        assert delta.n_reported == 1
        assert len(delta.only_in_deployment) == 1

    def test_missing_sequence_reported(self):
        # Fixed truth templates keep event naming identical across the
        # two parses (template inference would otherwise mask
        # differently on different member sets).
        truth = {
            "start": "start job *",
            "work": "work job * step *",
            "end": "end job *",
        }
        partial = [r for r in REFERENCE if r.session_id == "r1"]
        reference = OracleParser(truth_templates=truth).parse(REFERENCE)
        deployed = OracleParser(truth_templates=truth).parse(partial)
        delta = compare_deployments(reference, deployed)
        assert len(delta.only_in_reference) == 1

    def test_duplicate_sessions_collapse_to_distinct_sequences(self):
        doubled = REFERENCE + _records(
            [
                ("r3", "start", "start job 3"),
                ("r3", "end", "end job 3"),
            ]
        )
        reference = OracleParser().parse(REFERENCE)
        deployed = OracleParser().parse(doubled)
        # r3 repeats r2's (start, end) shape -> nothing new to report.
        delta = compare_deployments(reference, deployed)
        assert delta.n_reported == 0

    def test_bad_parser_destroys_reduction(self):
        # The paper's point: wrong event sequences inflate the report.
        from repro.datasets import generate_hdfs_sessions
        from repro.evaluation.mining_impact import table3_parser_factory

        dataset = generate_hdfs_sessions(300, seed=8)
        oracle = OracleParser().parse(dataset.records)
        bad = table3_parser_factory("SLCT").parse(dataset.records)
        good_delta = compare_deployments(oracle, oracle)
        cross_delta = compare_deployments(oracle, bad)
        assert cross_delta.n_reported > good_delta.n_reported
