"""Tests for the alternative clustering metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import EvaluationError
from repro.evaluation.metrics import (
    cluster_count_ratio,
    per_event_recall,
    purity,
    rand_index,
    summary,
)

labelings = st.lists(
    st.sampled_from(["a", "b", "c"]), min_size=2, max_size=40
)


class TestRandIndex:
    def test_perfect(self):
        assert rand_index(["x", "x", "y"], ["p", "p", "q"]) == 1.0

    def test_single_line(self):
        assert rand_index(["x"], ["p"]) == 1.0

    def test_total_disagreement(self):
        # Predicted merges everything, truth all singletons.
        assert rand_index(["x", "x", "x"], ["a", "b", "c"]) == 0.0

    def test_known_value(self):
        predicted = ["x", "x", "y", "y"]
        truth = ["p", "p", "p", "q"]
        # pairs: (0,1) both together; (0,2),(1,2) truth yes / pred no;
        # (2,3) pred no / truth no... let's count: agreements are
        # (0,1) and (0,3),(1,3).
        assert rand_index(predicted, truth) == pytest.approx(3 / 6)

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError):
            rand_index(["a"], ["a", "b"])

    @given(labelings)
    def test_self_comparison(self, labels):
        assert rand_index(labels, labels) == 1.0

    @given(labelings)
    def test_bounded(self, labels):
        truth = ["t" if i % 2 else "u" for i in range(len(labels))]
        assert 0.0 <= rand_index(labels, truth) <= 1.0

    def test_penalizes_merging_more_than_f_can(self):
        from repro.evaluation.fmeasure import f_measure

        truth = ["a"] * 5 + ["b"] * 5
        merged = ["x"] * 10
        assert rand_index(merged, truth) < 0.5
        assert f_measure(merged, truth) > 0.6  # F is more forgiving


class TestPurity:
    def test_pure_clusters(self):
        assert purity(["x", "x", "y"], ["p", "p", "q"]) == 1.0

    def test_mixed_cluster(self):
        assert purity(["x", "x", "x", "x"], ["p", "p", "p", "q"]) == 0.75

    def test_fragmentation_keeps_purity_high(self):
        predicted = ["c1", "c2", "c3", "c4"]
        truth = ["p", "p", "p", "p"]
        assert purity(predicted, truth) == 1.0

    def test_empty(self):
        assert purity([], []) == 1.0


class TestClusterCountRatio:
    def test_exact(self):
        assert cluster_count_ratio(["x", "y"], ["p", "q"]) == 1.0

    def test_fragmentation_above_one(self):
        assert cluster_count_ratio(["a", "b", "c"], ["p", "p", "p"]) == 3.0

    def test_merging_below_one(self):
        assert cluster_count_ratio(["a", "a"], ["p", "q"]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            cluster_count_ratio([], [])


class TestPerEventRecall:
    def test_intact_event(self):
        predicted = ["x", "x", "y"]
        truth = ["p", "p", "q"]
        assert per_event_recall(predicted, truth, "p") == 1.0

    def test_split_event(self):
        predicted = ["x", "y", "x", "y"]
        truth = ["p", "p", "p", "p"]
        # kept pairs: (0,2) and (1,3) of 6.
        assert per_event_recall(predicted, truth, "p") == pytest.approx(
            2 / 6
        )

    def test_singleton_event_is_vacuous(self):
        assert per_event_recall(["x", "y"], ["p", "q"], "q") == 1.0

    def test_unknown_event_rejected(self):
        with pytest.raises(EvaluationError):
            per_event_recall(["x"], ["p"], "zzz")

    def test_critical_event_analysis_matches_finding6(self):
        # A parse can have high overall F yet zero recall on one event.
        truth = ["big"] * 20 + ["critical"] * 4
        predicted = ["c0"] * 20 + [f"s{i}" for i in range(4)]
        from repro.evaluation.fmeasure import f_measure

        assert f_measure(predicted, truth) > 0.9
        assert per_event_recall(predicted, truth, "critical") == 0.0


class TestSummary:
    def test_keys_and_ranges(self):
        predicted = ["x", "x", "y", "z"]
        truth = ["p", "p", "q", "q"]
        result = summary(predicted, truth)
        assert set(result) == {
            "f_measure",
            "precision",
            "recall",
            "rand_index",
            "purity",
            "cluster_count_ratio",
        }
        for key, value in result.items():
            if key != "cluster_count_ratio":
                assert 0.0 <= value <= 1.0
