"""Tests for the exception hierarchy contract."""

import pytest

from repro.common.errors import (
    DatasetError,
    EvaluationError,
    MiningError,
    ParserConfigurationError,
    ReproError,
)

ALL_ERRORS = [
    DatasetError,
    EvaluationError,
    MiningError,
    ParserConfigurationError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)
    assert issubclass(error_type, Exception)


def test_single_except_clause_catches_everything():
    for error_type in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise error_type("boom")


def test_errors_are_distinguishable():
    with pytest.raises(DatasetError):
        try:
            raise DatasetError("data")
        except ParserConfigurationError:  # pragma: no cover
            pytest.fail("wrong branch")


def test_library_raises_only_repro_errors_for_bad_config():
    from repro.parsers import make_parser

    with pytest.raises(ReproError):
        make_parser("SLCT", support=-1)
    with pytest.raises(ReproError):
        make_parser("definitely-not-a-parser")
