"""Tests for the exception hierarchy contract.

Beyond the class hierarchy itself, :func:`test_every_raise_site_uses_repro_errors`
audits the whole source tree with an AST walk: every ``raise`` of a
named exception class must use a :class:`ReproError` subclass (so the
CLI's top-level handler and its exit-code mapping see everything), with
a short allowlist for exception types that encode Python-level
contracts rather than runtime failures.
"""

import ast
import os

import pytest

from repro.common.errors import (
    CheckpointError,
    DatasetError,
    EvaluationError,
    FallbackExhaustedError,
    MiningError,
    ParserConfigurationError,
    ParserTimeoutError,
    ReproError,
    ValidationError,
    WorkerCrashError,
)

ALL_ERRORS = [
    DatasetError,
    EvaluationError,
    MiningError,
    ParserConfigurationError,
    ValidationError,
    ParserTimeoutError,
    WorkerCrashError,
    CheckpointError,
    FallbackExhaustedError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)
    assert issubclass(error_type, Exception)


def test_single_except_clause_catches_everything():
    for error_type in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise error_type("boom")


def test_errors_are_distinguishable():
    with pytest.raises(DatasetError):
        try:
            raise DatasetError("data")
        except ParserConfigurationError:  # pragma: no cover
            pytest.fail("wrong branch")


def test_validation_error_is_also_a_value_error():
    # Callers that predate the hierarchy catch ValueError; both handles
    # must keep working.
    assert issubclass(ValidationError, ValueError)
    with pytest.raises(ValueError):
        raise ValidationError("bad value")
    with pytest.raises(ReproError):
        raise ValidationError("bad value")


def test_fallback_exhausted_carries_its_report():
    error = FallbackExhaustedError("all dead", report={"attempts": 3})
    assert error.report == {"attempts": 3}
    assert FallbackExhaustedError("no report").report is None


def test_library_raises_only_repro_errors_for_bad_config():
    from repro.parsers import make_parser

    with pytest.raises(ReproError):
        make_parser("SLCT", support=-1)
    with pytest.raises(ReproError):
        make_parser("definitely-not-a-parser")


# ----------------------------------------------------------------------
# Raise-site audit
# ----------------------------------------------------------------------

#: Exceptions that may be raised without being ReproError subclasses:
#: KeyError encodes the mapping contract (``parser.name -> factory``),
#: NotImplementedError marks abstract-method stubs, AssertionError
#: guards internal invariants that indicate bugs, not runtime faults,
#: and OSError is what the IO fault injector (FaultyIO) must raise —
#: recovery paths have to see the exact type (and errno) a real
#: syscall would produce; the durability layer re-classifies it into
#: ArtifactWriteError at the API boundary.  ShutdownRequested is a
#: control-flow signal (a graceful SIGINT/SIGTERM, akin to
#: KeyboardInterrupt), not a fault — handlers that catch ReproError to
#: classify failures must never swallow a shutdown request.
#: _ConnectionDone is the line server's private unwind signal (a dead
#: peer ends one connection's read loop); it is raised and caught
#: inside ``_serve_connection`` and never crosses an API boundary.
_ALLOWED_NON_REPRO = {
    "KeyError",
    "NotImplementedError",
    "AssertionError",
    "OSError",
    "ShutdownRequested",
    "_ConnectionDone",
}

_SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def _raised_names(tree):
    """Names of exception classes raised with an explicit constructor."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            yield node.lineno, exc.id
        elif isinstance(exc, ast.Attribute):
            yield node.lineno, exc.attr
        # bare ``raise`` (re-raise) and ``raise variable`` are fine:
        # they propagate something already classified at its origin.


def _repro_error_names():
    import repro.common.errors as errors_module
    import repro.resilience.faults as faults_module

    names = set()
    for module in (errors_module, faults_module):
        for name in dir(module):
            obj = getattr(module, name)
            if isinstance(obj, type) and issubclass(obj, ReproError):
                names.add(name)
    return names


def test_every_raise_site_uses_repro_errors():
    allowed = _repro_error_names() | _ALLOWED_NON_REPRO
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(_SRC_ROOT):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            rel = os.path.relpath(path, _SRC_ROOT)
            for lineno, name in _raised_names(tree):
                if name not in allowed:
                    offenders.append(f"{rel}:{lineno} raises {name}")
    assert not offenders, (
        "public raise sites must use ReproError subclasses:\n"
        + "\n".join(offenders)
    )
