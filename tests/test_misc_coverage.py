"""Tests for remaining edge branches across modules."""

import numpy as np
import pytest

from repro.cli import main
from repro.common.errors import DatasetError
from repro.common.types import LogRecord
from repro.datasets.hdfs import HDFS_BANK, _event_id_of
from repro.datasets.base import Template
from repro.mining.pca import q_statistic_threshold
from repro.mining.verification import compare_deployments
from repro.parsers import OracleParser


class TestQStatisticDegenerateSpectra:
    def test_h0_nonpositive_falls_back(self):
        # theta3 huge relative to theta2 drives h0 <= 0.
        eigenvalues = np.array([10.0, 5.0, 0.001, 0.001, 5.0])
        # Construct residual with one dominant cube contribution.
        threshold = q_statistic_threshold(
            np.array([10.0, 4.0, 3.9999, 0.0001]), k=1
        )
        assert threshold > 0

    def test_all_zero_residual(self):
        assert q_statistic_threshold(
            np.array([5.0, 0.0, 0.0]), k=1
        ) == float("inf")

    def test_k_zero_uses_whole_spectrum(self):
        threshold = q_statistic_threshold(np.array([3.0, 2.0, 1.0]), k=0)
        assert np.isfinite(threshold)


class TestHdfsEventRecovery:
    def test_known_line_recovers_id(self):
        truth = HDFS_BANK.truth_templates()
        line = "Verification succeeded for blk_123"
        assert _event_id_of(line, truth) == "E6"

    def test_unknown_line_raises(self):
        truth = HDFS_BANK.truth_templates()
        with pytest.raises(DatasetError):
            _event_id_of("completely unknown line shape", truth)


class TestTemplateValidation:
    def test_zero_weight_rejected(self):
        with pytest.raises(DatasetError):
            Template("X", "some pattern", weight=0)

    def test_unknown_placeholder_rejected(self):
        with pytest.raises(DatasetError):
            Template("X", "value <nosuchkind> here")

    def test_truth_template_masks_embedded_placeholder(self):
        template = Template("X", "src: /<ip>:<port> ok")
        assert template.truth_template == "src: * ok"


class TestCliParserSpecificFlags:
    def test_parse_logsig_with_groups(self, tmp_path, capsys):
        raw = str(tmp_path / "x.log")
        main(["generate", "Proxifier", raw, "--size", "120", "--seed", "1"])
        assert main(
            ["parse", "LogSig", raw, "--groups", "8", "--seed", "1"]
        ) == 0
        assert "LogSig" in capsys.readouterr().out

    def test_parse_lke(self, tmp_path, capsys):
        raw = str(tmp_path / "x.log")
        main(["generate", "Proxifier", raw, "--size", "100", "--seed", "2"])
        assert main(["parse", "LKE", raw, "--seed", "1"]) == 0
        assert "LKE" in capsys.readouterr().out

    def test_parse_slct_support_flag(self, tmp_path, capsys):
        raw = str(tmp_path / "x.log")
        main(["generate", "Zookeeper", raw, "--size", "200", "--seed", "3"])
        assert main(["parse", "SLCT", raw, "--support", "0.02"]) == 0
        assert "SLCT" in capsys.readouterr().out


class TestVerificationSignatureValidation:
    def test_bad_signature_rejected(self):
        records = [
            LogRecord(content="a", session_id="s", truth_event="a"),
        ]
        parsed = OracleParser().parse(records)
        with pytest.raises(ValueError):
            compare_deployments(parsed, parsed, signature="bogus")


class TestStructuredFileLines:
    def test_fields_tab_separated(self):
        records = [
            LogRecord(
                content="x y", timestamp="t0", session_id="s0",
                truth_event="E1",
            )
        ]
        parsed = OracleParser().parse(records)
        line = parsed.structured_file_lines()[0]
        assert line.split("\t") == ["0", "t0", "s0", "E1"]
