"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_arg_parser, main


class TestArgParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args([])

    def test_generate_args(self):
        args = build_arg_parser().parse_args(
            ["generate", "HDFS", "out.log", "--size", "10"]
        )
        assert args.command == "generate"
        assert args.size == 10

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["generate", "NoSuch", "x.log"])

    def test_rejects_unknown_parser(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["parse", "NoSuch", "x.log"])


class TestCommands:
    def test_generate_then_parse(self, tmp_path, capsys):
        raw = str(tmp_path / "zk.log")
        assert main(
            ["generate", "Zookeeper", raw, "--size", "200", "--seed", "1"]
        ) == 0
        assert os.path.exists(raw)
        assert main(["parse", "IPLoM", raw]) == 0
        assert os.path.exists(raw + ".events")
        assert os.path.exists(raw + ".structured")
        out = capsys.readouterr().out
        assert "IPLoM" in out

    def test_parse_with_preprocessing(self, tmp_path, capsys):
        raw = str(tmp_path / "hdfs.log")
        main(["generate", "HDFS", raw, "--size", "150", "--seed", "2"])
        assert main(
            ["parse", "SLCT", raw, "--preprocess-dataset", "HDFS"]
        ) == 0
        assert "SLCT" in capsys.readouterr().out

    def test_parse_custom_output_stem(self, tmp_path):
        raw = str(tmp_path / "x.log")
        main(["generate", "Proxifier", raw, "--size", "100", "--seed", "1"])
        stem = str(tmp_path / "result")
        main(["parse", "IPLoM", raw, "--output-stem", stem])
        assert os.path.exists(stem + ".events")

    def test_evaluate(self, capsys):
        assert main(
            [
                "evaluate",
                "IPLoM",
                "Proxifier",
                "--sample-size",
                "200",
                "--seed",
                "1",
            ]
        ) == 0
        assert "F-measure" in capsys.readouterr().out

    def test_mine(self, capsys):
        assert main(
            ["mine", "GroundTruth", "--blocks", "300", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "false alarms" in out

    def test_mine_lke_reports_paper_exclusion(self, capsys):
        # LKE is excluded from the Table III experiment, as in §IV-D.
        assert main(["mine", "LKE", "--blocks", "100"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_missing_file_fails_cleanly(self, capsys):
        assert main(["parse", "IPLoM", "/nonexistent/file.log"]) == 2
        assert "error" in capsys.readouterr().err

    def test_metrics(self, capsys):
        assert main(
            [
                "metrics",
                "IPLoM",
                "Proxifier",
                "--sample-size",
                "200",
                "--seed",
                "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "rand_index" in out
        assert "purity" in out

    def test_tune(self, capsys):
        assert main(
            [
                "tune",
                "SLCT",
                "Proxifier",
                "--sample-size",
                "200",
                "--seed",
                "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "support" in out
