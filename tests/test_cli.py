"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_arg_parser, exit_code_for, main
from repro.common.errors import (
    CheckpointError,
    DatasetError,
    EvaluationError,
    FallbackExhaustedError,
    MiningError,
    ParserConfigurationError,
    ParserTimeoutError,
    ValidationError,
    WorkerCrashError,
)


class TestArgParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args([])

    def test_generate_args(self):
        args = build_arg_parser().parse_args(
            ["generate", "HDFS", "out.log", "--size", "10"]
        )
        assert args.command == "generate"
        assert args.size == 10

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["generate", "NoSuch", "x.log"])

    def test_rejects_unknown_parser(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["parse", "NoSuch", "x.log"])


class TestCommands:
    def test_generate_then_parse(self, tmp_path, capsys):
        raw = str(tmp_path / "zk.log")
        assert main(
            ["generate", "Zookeeper", raw, "--size", "200", "--seed", "1"]
        ) == 0
        assert os.path.exists(raw)
        assert main(["parse", "IPLoM", raw]) == 0
        assert os.path.exists(raw + ".events")
        assert os.path.exists(raw + ".structured")
        out = capsys.readouterr().out
        assert "IPLoM" in out

    def test_parse_with_preprocessing(self, tmp_path, capsys):
        raw = str(tmp_path / "hdfs.log")
        main(["generate", "HDFS", raw, "--size", "150", "--seed", "2"])
        assert main(
            ["parse", "SLCT", raw, "--preprocess-dataset", "HDFS"]
        ) == 0
        assert "SLCT" in capsys.readouterr().out

    def test_parse_custom_output_stem(self, tmp_path):
        raw = str(tmp_path / "x.log")
        main(["generate", "Proxifier", raw, "--size", "100", "--seed", "1"])
        stem = str(tmp_path / "result")
        main(["parse", "IPLoM", raw, "--output-stem", stem])
        assert os.path.exists(stem + ".events")

    def test_evaluate(self, capsys):
        assert main(
            [
                "evaluate",
                "IPLoM",
                "Proxifier",
                "--sample-size",
                "200",
                "--seed",
                "1",
            ]
        ) == 0
        assert "F-measure" in capsys.readouterr().out

    def test_mine(self, capsys):
        assert main(
            ["mine", "GroundTruth", "--blocks", "300", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "false alarms" in out

    def test_mine_lke_reports_paper_exclusion(self, capsys):
        # LKE is excluded from the Table III experiment, as in §IV-D:
        # asking for it is a configuration error (exit 2).
        assert main(["mine", "LKE", "--blocks", "100"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_missing_file_fails_cleanly(self, capsys):
        # A missing input file is a data error (exit 3).
        assert main(["parse", "IPLoM", "/nonexistent/file.log"]) == 3
        assert "error" in capsys.readouterr().err

    def test_metrics(self, capsys):
        assert main(
            [
                "metrics",
                "IPLoM",
                "Proxifier",
                "--sample-size",
                "200",
                "--seed",
                "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "rand_index" in out
        assert "purity" in out

    def test_tune(self, capsys):
        assert main(
            [
                "tune",
                "SLCT",
                "Proxifier",
                "--sample-size",
                "200",
                "--seed",
                "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "support" in out


class TestScore:
    def test_label_free_emits_cohesion_and_separation(self, capsys):
        assert main(
            [
                "score",
                "--label-free",
                "--parsers",
                "Drain,Passthrough",
                "--datasets",
                "Proxifier",
                "--sample-size",
                "150",
                "--seed",
                "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cohesion" in out
        assert "separation" in out
        assert "Drain" in out and "Passthrough" in out

    def test_labeled_mode_reports_f_measure(self, capsys):
        assert main(
            [
                "score",
                "--parsers",
                "IPLoM",
                "--datasets",
                "Proxifier",
                "--sample-size",
                "150",
                "--seed",
                "1",
            ]
        ) == 0
        assert "F-measure" in capsys.readouterr().out

    def test_unknown_parser_exits_2_listing_available(self, capsys):
        # The registry error path: a typo'd parser is a configuration
        # error, and the message must name every valid choice.
        assert main(
            ["score", "--label-free", "--parsers", "Drian"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown parser" in err
        from repro.parsers import available_parsers

        for name in available_parsers():
            assert name in err

    def test_unknown_dataset_exits_2(self, capsys):
        assert main(
            ["score", "--label-free", "--datasets", "NoSuch"]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestExitCodes:
    """The error-family → exit-code contract (config=2, data=3, runtime=4)."""

    @pytest.mark.parametrize(
        "error,expected",
        [
            (ParserConfigurationError("x"), 2),
            (ValidationError("x"), 2),
            (EvaluationError("x"), 2),
            (MiningError("x"), 2),
            (DatasetError("x"), 3),
            (ParserTimeoutError("x"), 4),
            (WorkerCrashError("x"), 4),
            (CheckpointError("x"), 4),
            (FallbackExhaustedError("x"), 4),
        ],
    )
    def test_mapping(self, error, expected):
        assert exit_code_for(error) == expected

    def test_runtime_error_surfaces_as_4(self, tmp_path, capsys):
        raw = str(tmp_path / "x.log")
        main(["generate", "HDFS", raw, "--size", "50", "--seed", "1"])
        code = main(
            [
                "stream",
                "IPLoM",
                raw,
                "--checkpoint",
                str(tmp_path / "missing.json"),
                "--resume",
            ]
        )
        assert code == 4  # CheckpointError: file not found
        assert "checkpoint" in capsys.readouterr().err


class TestSupervise:
    def test_faulted_run_recovers_with_report_and_quarantine(
        self, tmp_path, capsys
    ):
        qpath = str(tmp_path / "q.jsonl")
        code = main(
            [
                "supervise",
                "--dataset",
                "HDFS",
                "--size",
                "300",
                "--seed",
                "7",
                "--chain",
                "IPLoM,SLCT",
                "--faults",
                "11",
                "--fault-every",
                "20",
                "--fault-parser",
                "IPLoM",
                "--fault-parser-fails",
                "2",
                "--retries",
                "2",
                "--retry-delay",
                "0.001",
                "--quarantine-path",
                qpath,
                "--verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # FailureReport: the flaky IPLoM burned its retries, SLCT won.
        assert "IPLoM attempt 1: error" in out
        assert "winner: SLCT" in out
        # Quarantine file exists and is non-empty.
        assert os.path.exists(qpath)
        assert os.path.getsize(qpath) > 0
        # The fallback output passed equivalence on the clean subset.
        assert "streaming == batch" in out or "==" in out

    def test_clean_run_first_parser_wins(self, capsys):
        code = main(
            [
                "supervise",
                "--dataset",
                "Proxifier",
                "--size",
                "200",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "winner: IPLoM" in out
        assert "quarantine: empty" in out

    def test_exhausted_chain_exits_4(self, capsys):
        code = main(
            [
                "supervise",
                "--dataset",
                "HDFS",
                "--size",
                "100",
                "--seed",
                "1",
                "--chain",
                "IPLoM",
                "--fault-parser",
                "IPLoM",
                "--fault-parser-fails",
                "99",
                "--retries",
                "2",
                "--retry-delay",
                "0.001",
            ]
        )
        assert code == 4
        assert "fallback chain failed" in capsys.readouterr().err

    def test_unknown_chain_parser_exits_2(self, capsys):
        assert main(["supervise", "--chain", "NoSuch", "--dataset", "HDFS"]) == 2
        assert "unknown parser" in capsys.readouterr().err

    def test_requires_exactly_one_input(self, capsys):
        assert main(["supervise"]) == 2
        capsys.readouterr()


class TestStreamResilience:
    def test_quarantine_path_flag(self, tmp_path, capsys):
        qpath = str(tmp_path / "q.jsonl")
        code = main(
            [
                "stream",
                "IPLoM",
                "--dataset",
                "HDFS",
                "--size",
                "300",
                "--seed",
                "5",
                "--faults",
                "9",
                "--fault-every",
                "25",
                "--quarantine-path",
                qpath,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rejected" in out
        assert os.path.exists(qpath)

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        raw = str(tmp_path / "hdfs.log")
        main(["generate", "HDFS", raw, "--size", "600", "--seed", "4"])
        base_args = ["stream", "IPLoM", raw, "--flush-policy", "prefix"]
        full_stem = str(tmp_path / "full")
        assert main(base_args + ["--output-stem", full_stem]) == 0
        # Checkpointed run (checkpoints every 200 records, finalizes).
        cp = str(tmp_path / "cp.json")
        part_stem = str(tmp_path / "part")
        assert main(
            base_args
            + [
                "--checkpoint",
                cp,
                "--checkpoint-every",
                "200",
                "--output-stem",
                part_stem,
            ]
        ) == 0
        assert os.path.exists(cp)
        assert (
            open(part_stem + ".events").read()
            == open(full_stem + ".events").read()
        )
        capsys.readouterr()

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["stream", "IPLoM", "--dataset", "HDFS", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err


class TestBudgetedStream:
    def test_budgeted_stream_downgrades_and_reports(self, capsys):
        code = main(
            [
                "stream",
                "IPLoM",
                "--dataset",
                "HDFS",
                "--size",
                "400",
                "--seed",
                "5",
                "--budget-queue",
                "20",
                "--check-every",
                "25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "finished on rung" in out
        assert "anomaly-detection change" in out

    def test_budgeted_stream_writes_outputs(self, tmp_path, capsys):
        stem = str(tmp_path / "budgeted")
        code = main(
            [
                "stream",
                "IPLoM",
                "--dataset",
                "HDFS",
                "--size",
                "200",
                "--budget-queue",
                "100000",
                "--output-stem",
                stem,
            ]
        )
        assert code == 0
        assert os.path.exists(stem + ".events")
        assert os.path.exists(stem + ".structured")
        capsys.readouterr()

    def test_ladder_flag_validates_names(self, capsys):
        code = main(
            [
                "stream",
                "IPLoM",
                "--dataset",
                "HDFS",
                "--ladder",
                "IPLoM,NoSuchRung",
            ]
        )
        assert code == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_budget_flags_reject_checkpointing(self, tmp_path, capsys):
        code = main(
            [
                "stream",
                "IPLoM",
                "--dataset",
                "HDFS",
                "--budget-mem",
                "64",
                "--checkpoint",
                str(tmp_path / "cp.json"),
            ]
        )
        assert code == 2
        assert "budget" in capsys.readouterr().err.lower()

    def test_backpressure_shed_flags(self, capsys):
        code = main(
            [
                "stream",
                "IPLoM",
                "--dataset",
                "HDFS",
                "--size",
                "300",
                "--max-pending",
                "50",
                "--overflow",
                "shed",
            ]
        )
        assert code == 0
        capsys.readouterr()


class TestServeIsolation:
    """`serve --isolation process` flags and the status ticker."""

    def _write_stream(self, tmp_path, n=40):
        lines = []
        for i in range(n):
            tenant = ["alpha", "beta"][i % 2]
            lines.append(f"{tenant}\tconn from host{i % 5} port {i}")
        path = tmp_path / "in.log"
        path.write_text("".join(line + "\n" for line in lines))
        return path

    def test_isolation_flag_parses(self):
        args = build_arg_parser().parse_args(
            [
                "serve", "Drain", "d", "--isolation", "process",
                "--watchdog", "2.5", "--poison-threshold", "4",
                "--fence-threshold", "6", "--status-interval", "1.5",
            ]
        )
        assert args.isolation == "process"
        assert args.watchdog == 2.5
        assert args.poison_threshold == 4
        assert args.fence_threshold == 6
        assert args.status_interval == 1.5

    def test_status_interval_journals_supervisor_status(
        self, tmp_path, capsys
    ):
        """Satellite 6: the status line is asserted through the events
        artifact, not stdout scraping."""
        from repro.resilience import read_jsonl_payloads

        stream = self._write_stream(tmp_path)
        events_path = tmp_path / "events.jsonl"
        code = main(
            [
                "serve", "Drain", str(tmp_path / "data"),
                "--replay", str(stream),
                "--isolation", "process",
                "--checkpoint-every", "8",
                "--status-interval", "0.1",
                "--events-out", str(events_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        statuses = [
            event
            for event in read_jsonl_payloads(str(events_path))
            if event["kind"] == "supervisor_status"
        ]
        assert statuses, "at least the final status is always journaled"
        final = statuses[-1]
        assert final["line"].startswith("supervisor: ")
        for tenant in ("alpha", "beta"):
            info = final["tenants"][tenant]
            assert info["state"] in (
                "starting", "running", "replaying", "draining",
                "restarting", "drained", "fenced",
            )
            assert info["restarts"] == 0
            assert isinstance(info["queue"], int)

    def test_process_isolation_replay_completes(self, tmp_path, capsys):
        stream = self._write_stream(tmp_path)
        data = tmp_path / "data"
        code = main(
            [
                "serve", "Drain", str(data),
                "--replay", str(stream),
                "--isolation", "process",
                "--checkpoint-every", "8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "accepted=40" in out
        assert (data / "alpha" / "out.manifest.json").exists()
        assert (data / "beta" / "out.manifest.json").exists()

    def test_process_isolation_rejects_tenant_budget_flags(
        self, tmp_path, capsys
    ):
        stream = self._write_stream(tmp_path)
        code = main(
            [
                "serve", "Drain", str(tmp_path / "data"),
                "--replay", str(stream),
                "--isolation", "process",
                "--tenant-budget-mem", "64",
            ]
        )
        capsys.readouterr()
        assert code == 2
