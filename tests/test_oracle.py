"""Unit tests for the ground-truth (oracle) parser."""

import pytest

from repro.common.errors import ParserConfigurationError
from repro.common.types import LogRecord, ParseResult
from repro.datasets import generate_dataset, get_dataset_spec
from repro.evaluation import f_measure
from repro.parsers import OracleParser


class TestLabeledRecords:
    def test_uses_truth_labels(self):
        records = [
            LogRecord(content="anything", truth_event="EV_A"),
            LogRecord(content="else", truth_event="EV_B"),
            LogRecord(content="anything again", truth_event="EV_A"),
        ]
        result = OracleParser().parse(records)
        assert result.assignments == ["EV_A", "EV_B", "EV_A"]

    def test_perfect_f_measure_on_generated_data(self):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 200, seed=1)
        result = OracleParser().parse(dataset.records)
        assert f_measure(result.assignments, dataset.truth_assignments) == 1.0

    def test_events_listed_once_per_type(self):
        records = [
            LogRecord(content="x", truth_event="E1"),
            LogRecord(content="y", truth_event="E1"),
        ]
        result = OracleParser().parse(records)
        assert [e.event_id for e in result.events] == ["E1"]


class TestTemplateMatching:
    TEMPLATES = {
        "OPEN": "open file *",
        "CLOSE": "close file * status *",
    }

    def test_matches_unlabeled_records(self):
        parser = OracleParser(truth_templates=self.TEMPLATES)
        records = [
            LogRecord(content="open file a.txt"),
            LogRecord(content="close file a.txt status 0"),
        ]
        result = parser.parse(records)
        assert result.assignments == ["OPEN", "CLOSE"]

    def test_unmatched_becomes_outlier(self):
        parser = OracleParser(truth_templates=self.TEMPLATES)
        result = parser.parse([LogRecord(content="garbled nonsense")])
        assert result.assignments == [ParseResult.OUTLIER_EVENT_ID]

    def test_unlabeled_without_templates_raises(self):
        with pytest.raises(ParserConfigurationError):
            OracleParser().parse([LogRecord(content="no label")])

    def test_labels_take_priority_over_matching(self):
        parser = OracleParser(truth_templates=self.TEMPLATES)
        record = LogRecord(content="open file a.txt", truth_event="CUSTOM")
        assert parser.parse([record]).assignments == ["CUSTOM"]

    def test_templates_reported_for_matched_events(self):
        parser = OracleParser(truth_templates=self.TEMPLATES)
        result = parser.parse([LogRecord(content="open file a.txt")])
        assert result.template_of("OPEN") == "open file *"
