"""Tests for Synoptic-style temporal invariants and refinement."""

import pytest

from repro.common.errors import MiningError
from repro.common.types import LogRecord
from repro.mining.synoptic import (
    TemporalInvariant,
    check_invariant,
    mine_temporal_invariants,
    model_violates_nfby,
    refine_model,
)
from repro.mining.model import build_system_model
from repro.parsers import OracleParser


def _mine(sequences):
    return {
        str(invariant)
        for invariant in mine_temporal_invariants(sequences)
    }


class TestMineTemporalInvariants:
    def test_always_followed_by(self):
        invariants = _mine([("open", "close"), ("open", "use", "close")])
        assert "open AlwaysFollowedBy close" in invariants

    def test_afby_broken_by_one_session(self):
        invariants = _mine([("open", "close"), ("open",)])
        assert "open AlwaysFollowedBy close" not in invariants

    def test_always_preceded_by(self):
        invariants = _mine([("open", "close"), ("open", "x", "close")])
        assert "close AlwaysPrecededBy open" in invariants

    def test_never_followed_by(self):
        invariants = _mine([("a", "b"), ("a", "c")])
        assert "b NeverFollowedBy a" in invariants
        assert "a NeverFollowedBy b" not in invariants

    def test_afby_uses_last_occurrence(self):
        # a b a: the last 'a' is not followed by 'b'.
        invariants = _mine([("a", "b", "a")])
        assert "a AlwaysFollowedBy b" not in invariants

    def test_apby_uses_first_occurrence(self):
        # b a b: the first 'b' has no earlier 'a'.
        invariants = _mine([("b", "a", "b")])
        assert "b AlwaysPrecededBy a" not in invariants

    def test_empty_rejected(self):
        with pytest.raises(MiningError):
            mine_temporal_invariants([])


class TestCheckInvariant:
    def test_afby_holds(self):
        inv = TemporalInvariant("AFby", "a", "b")
        assert check_invariant([("a", "b"), ("x",)], inv)

    def test_afby_fails(self):
        inv = TemporalInvariant("AFby", "a", "b")
        assert not check_invariant([("b", "a")], inv)

    def test_nfby_fails_on_late_occurrence(self):
        inv = TemporalInvariant("NFby", "a", "b")
        assert not check_invariant([("a", "x", "b")], inv)

    def test_mined_invariants_all_check_out(self):
        sequences = [
            ("alloc", "write", "write", "close"),
            ("alloc", "close"),
            ("alloc", "write", "close"),
        ]
        for invariant in mine_temporal_invariants(sequences):
            assert check_invariant(sequences, invariant), str(invariant)


class TestModelViolation:
    def test_merged_model_overgeneralizes(self):
        # Sessions: a->b->d and c->b->e. Merged model has path a..b..e,
        # so "a NeverFollowedBy e" (true in the log) is violated.
        rows = [
            ("s1", "a"), ("s1", "b"), ("s1", "d"),
            ("s2", "c"), ("s2", "b"), ("s2", "e"),
        ]
        records = [
            LogRecord(content=e, session_id=s, truth_event=e)
            for s, e in rows
        ]
        parsed = OracleParser().parse(records)
        model = build_system_model(parsed)
        inv = TemporalInvariant("NFby", "a", "e")
        assert model_violates_nfby(model, inv)

    def test_non_nfby_rejected(self):
        rows = [("s1", "a"), ("s1", "b")]
        records = [
            LogRecord(content=e, session_id=s, truth_event=e)
            for s, e in rows
        ]
        model = build_system_model(OracleParser().parse(records))
        with pytest.raises(MiningError):
            model_violates_nfby(model, TemporalInvariant("AFby", "a", "b"))


class TestRefinement:
    def _records(self):
        rows = [
            ("s1", "a"), ("s1", "b"), ("s1", "d"),
            ("s2", "c"), ("s2", "b"), ("s2", "e"),
            ("s3", "a"), ("s3", "b"), ("s3", "d"),
            ("s4", "c"), ("s4", "b"), ("s4", "e"),
        ]
        return [
            LogRecord(content=e, session_id=s, truth_event=e)
            for s, e in rows
        ]

    def test_refinement_splits_confluence_state(self):
        parsed = OracleParser().parse(self._records())
        refined = refine_model(parsed)
        assert refined.splits >= 1
        # After splitting b by context, b←a and b←c are separate states.
        assert any("b←" in state for state in refined.model.states)

    def test_refined_model_satisfies_nfby(self):
        parsed = OracleParser().parse(self._records())
        refined = refine_model(parsed)
        assert not refined.unsatisfied

    def test_no_sessions_rejected(self):
        parsed = OracleParser().parse(
            [LogRecord(content="x", truth_event="x")]
        )
        with pytest.raises(MiningError):
            refine_model(parsed)

    def test_straight_line_model_needs_no_refinement(self):
        rows = [("s1", "a"), ("s1", "b"), ("s2", "a"), ("s2", "b")]
        records = [
            LogRecord(content=e, session_id=s, truth_event=e)
            for s, e in rows
        ]
        refined = refine_model(OracleParser().parse(records))
        assert refined.splits == 0

    def test_hdfs_models_refine(self):
        from repro.datasets import generate_hdfs_sessions

        dataset = generate_hdfs_sessions(150, seed=6)
        parsed = OracleParser().parse(dataset.records)
        refined = refine_model(parsed, max_splits=10)
        assert refined.model.n_states > 2
        assert refined.splits <= 10
