"""Tests for the RQ3 harness (Table III machinery)."""

import pytest

from repro.common.errors import EvaluationError
from repro.datasets import generate_hdfs_sessions
from repro.evaluation.mining_impact import (
    MiningImpactRow,
    TABLE3_CONFIGS,
    corrupt_assignments,
    evaluate_mining_impact,
    impact_from_parse,
    score_detection,
    table3_parser_factory,
)
from repro.parsers import OracleParser


class TestScoreDetection:
    LABELS = {"b1": True, "b2": False, "b3": True}

    def test_counts(self):
        reported, detected, false_alarms = score_detection(
            frozenset({"b1", "b2"}), self.LABELS
        )
        assert (reported, detected, false_alarms) == (2, 1, 1)

    def test_empty_flags(self):
        assert score_detection(frozenset(), self.LABELS) == (0, 0, 0)

    def test_unknown_session_rejected(self):
        with pytest.raises(EvaluationError):
            score_detection(frozenset({"ghost"}), self.LABELS)


class TestMiningImpactRow:
    def test_rates(self):
        row = MiningImpactRow(
            parser="X",
            parsing_accuracy=0.9,
            reported=100,
            detected=60,
            false_alarms=40,
            true_anomalies=120,
        )
        assert row.detection_rate == pytest.approx(0.5)
        assert row.false_alarm_rate == pytest.approx(0.4)

    def test_zero_division_guards(self):
        row = MiningImpactRow("X", 1.0, 0, 0, 0, 0)
        assert row.detection_rate == 0.0
        assert row.false_alarm_rate == 0.0


class TestEvaluateMiningImpact:
    def test_oracle_has_perfect_accuracy_and_no_false_alarms(self):
        dataset = generate_hdfs_sessions(800, seed=1)
        row = evaluate_mining_impact(OracleParser(), dataset)
        assert row.parsing_accuracy == 1.0
        assert row.false_alarms <= row.reported * 0.1
        assert row.true_anomalies == len(dataset.anomaly_blocks)


class TestTable3Factory:
    def test_all_configs_buildable(self):
        for name in TABLE3_CONFIGS:
            parser = table3_parser_factory(name, seed=1)
            assert parser is not None

    def test_unknown_parser_rejected(self):
        with pytest.raises(EvaluationError):
            table3_parser_factory("LKE")

    def test_iplom_config_preprocesses(self):
        parser = table3_parser_factory("IPLoM")
        assert parser.preprocessor is not None

    def test_slct_config_raw(self):
        parser = table3_parser_factory("SLCT")
        assert parser.preprocessor is None


class TestCorruptAssignments:
    def _parsed(self):
        dataset = generate_hdfs_sessions(200, seed=2)
        return OracleParser().parse(dataset.records), dataset

    def test_zero_rate_is_identity(self):
        parsed, _ = self._parsed()
        corrupted = corrupt_assignments(parsed, 0.0, ["E1"], seed=1)
        assert corrupted.assignments == parsed.assignments

    def test_full_rate_replaces_all_targets(self):
        parsed, _ = self._parsed()
        corrupted = corrupt_assignments(
            parsed, 1.0, ["E1"], seed=1, mode="merge"
        )
        assert "E1" not in corrupted.assignments
        assert "E_PARSE_ERROR" in corrupted.assignments

    def test_partial_rate_count(self):
        parsed, _ = self._parsed()
        n_target = parsed.assignments.count("E1")
        corrupted = corrupt_assignments(
            parsed, 0.5, ["E1"], seed=1, mode="merge"
        )
        n_corrupt = corrupted.assignments.count("E_PARSE_ERROR")
        assert n_corrupt == round(0.5 * n_target)

    def test_fragment_mode_creates_singletons(self):
        parsed, _ = self._parsed()
        corrupted = corrupt_assignments(
            parsed, 1.0, ["E1"], seed=1, mode="fragment"
        )
        bogus = [a for a in corrupted.assignments if a.startswith("E_PARSE")]
        assert len(bogus) == len(set(bogus)) > 0

    def test_invalid_mode_rejected(self):
        parsed, _ = self._parsed()
        with pytest.raises(EvaluationError):
            corrupt_assignments(parsed, 0.1, ["E1"], mode="scramble")

    def test_non_target_lines_untouched(self):
        parsed, _ = self._parsed()
        corrupted = corrupt_assignments(parsed, 1.0, ["E1"], seed=1)
        for before, after in zip(parsed.assignments, corrupted.assignments):
            if before != "E1":
                assert after == before

    def test_invalid_rate_rejected(self):
        parsed, _ = self._parsed()
        with pytest.raises(EvaluationError):
            corrupt_assignments(parsed, 1.5, ["E1"])

    def test_unknown_target_rejected(self):
        parsed, _ = self._parsed()
        with pytest.raises(EvaluationError):
            corrupt_assignments(parsed, 0.1, ["E999"])

    def test_tiny_errors_on_critical_events_wreck_mining(self):
        # Finding 6: fragmenting the rare transfer events — a per-mille
        # F-measure cost — produces an order-of-magnitude degradation.
        dataset = generate_hdfs_sessions(1500, seed=3)
        parsed = OracleParser().parse(dataset.records)
        clean = impact_from_parse("clean", parsed, dataset)
        corrupted = corrupt_assignments(
            parsed, 0.5, ["E13", "E15"], seed=4, mode="fragment"
        )
        degraded = impact_from_parse("corrupted", corrupted, dataset)
        assert degraded.parsing_accuracy > 0.99
        assert (
            degraded.false_alarms > 10 * max(clean.false_alarms, 1)
            or degraded.detected < clean.detected / 2
        )

    def test_large_errors_on_common_events_are_benign(self):
        # The flip side of Finding 6: a systematic 7% F-measure hit on a
        # ubiquitous event barely moves the mining result.
        dataset = generate_hdfs_sessions(1500, seed=3)
        parsed = OracleParser().parse(dataset.records)
        clean = impact_from_parse("clean", parsed, dataset)
        corrupted = corrupt_assignments(
            parsed, 0.5, ["E3"], seed=4, mode="merge"
        )
        degraded = impact_from_parse("corrupted", corrupted, dataset)
        assert degraded.parsing_accuracy < 0.95
        assert degraded.detected >= clean.detected - 3
        assert degraded.false_alarms <= clean.false_alarms + 3
