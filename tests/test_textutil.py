"""Unit tests for repro.common.textutil."""

import pytest

from repro.common.textutil import (
    edit_distance,
    format_table,
    longest_common_subsequence,
    sigmoid_position_weight,
)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance(["a", "b"], ["a", "b"]) == 0

    def test_single_substitution(self):
        assert edit_distance(["a", "b"], ["a", "c"]) == 1

    def test_insertion(self):
        assert edit_distance(["a"], ["a", "b"]) == 1

    def test_deletion(self):
        assert edit_distance(["a", "b"], ["b"]) == 1

    def test_empty_vs_nonempty(self):
        assert edit_distance([], ["a", "b", "c"]) == 3

    def test_both_empty(self):
        assert edit_distance([], []) == 0

    def test_disjoint(self):
        assert edit_distance(["a", "b"], ["c", "d"]) == 2

    def test_weighted_zero_late_positions(self):
        # Weight 0 beyond index 0 -> edits past the head are free.
        weight = lambda i: 1.0 if i == 0 else 0.0
        assert edit_distance(["a", "b"], ["a", "c"], weight) == 0.0

    def test_weighted_head_edit_costs(self):
        weight = lambda i: 1.0 if i == 0 else 0.0
        assert edit_distance(["x", "b"], ["y", "b"], weight) == 1.0


class TestSigmoidWeight:
    def test_decreasing(self):
        weight = sigmoid_position_weight(10, 10)
        values = [weight(i) for i in range(10)]
        assert values == sorted(values, reverse=True)

    def test_bounded(self):
        weight = sigmoid_position_weight(8, 12)
        assert all(0 < weight(i) < 1 for i in range(12))

    def test_midpoint_is_half(self):
        weight = sigmoid_position_weight(10, 10)
        assert weight(5) == pytest.approx(0.5)


class TestLcs:
    def test_common_skeleton(self):
        a = ["open", "file", "a", "now"]
        b = ["open", "x", "file", "now"]
        assert longest_common_subsequence(a, b) == ["open", "file", "now"]

    def test_no_common(self):
        assert longest_common_subsequence(["a"], ["b"]) == []

    def test_identical(self):
        assert longest_common_subsequence(["a", "b"], ["a", "b"]) == ["a", "b"]

    def test_subsequence_not_substring(self):
        assert longest_common_subsequence(
            ["a", "x", "b"], ["a", "b"]
        ) == ["a", "b"]

    def test_empty_input(self):
        assert longest_common_subsequence([], ["a"]) == []

    def test_length_is_symmetric(self):
        a = ["p", "q", "r", "s"]
        b = ["q", "s", "p"]
        assert len(longest_common_subsequence(a, b)) == len(
            longest_common_subsequence(b, a)
        )


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "a" in lines[2]
        assert "22" in lines[3]

    def test_pads_columns(self):
        text = format_table(["h"], [["long-cell"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len(row)

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
