"""Tests for the ASCII table/figure renderers."""

from repro.datasets import get_dataset_spec
from repro.evaluation.accuracy import AccuracyResult
from repro.evaluation.efficiency import EfficiencyPoint
from repro.evaluation.mining_impact import MiningImpactRow
from repro.evaluation.reports import (
    render_series,
    render_table1,
    render_table2,
    render_table3,
)


def _acc(value, preprocessed=False):
    return AccuracyResult(
        parser="P",
        dataset="D",
        preprocessed=preprocessed,
        sample_size=2000,
        runs=[value],
    )


class TestRenderTable1:
    def test_contains_dataset_rows(self):
        spec = get_dataset_spec("HDFS")
        text = render_table1([(spec, 1000, (8, 29), 29)])
        assert "HDFS" in text
        assert "1,000" in text
        assert "8~29" in text


class TestRenderTable2:
    def test_raw_and_preprocessed_cells(self):
        results = {
            ("SLCT", "HDFS"): (_acc(0.857), _acc(0.931, True)),
        }
        text = render_table2(results, ["SLCT"], ["HDFS"])
        assert "0.86/0.93" in text

    def test_missing_preprocessed_renders_dash(self):
        results = {("SLCT", "Proxifier"): (_acc(0.89), None)}
        text = render_table2(results, ["SLCT"], ["Proxifier"])
        assert "0.89/-" in text


class TestRenderTable3:
    def test_row_formatting(self):
        row = MiningImpactRow(
            parser="SLCT",
            parsing_accuracy=0.83,
            reported=18450,
            detected=10935,
            false_alarms=7515,
            true_anomalies=16838,
        )
        text = render_table3([row])
        assert "SLCT" in text
        assert "18,450" in text
        assert "65%" in text or "(40" in text  # false alarm percentage


class TestRenderSeries:
    def test_efficiency_points(self):
        points = [
            EfficiencyPoint("SLCT", "BGL", 400, 0.1234),
            EfficiencyPoint("SLCT", "BGL", 4000, None),
        ]
        text = render_series("SLCT on BGL", points)
        assert "SLCT on BGL" in text
        assert "0.123s" in text
        assert "skipped" in text

    def test_plain_value_series(self):
        text = render_series("accuracy", [(400, 0.91), (4000, 0.88)])
        assert "0.910" in text
        assert "4,000" in text
