"""Tests for Synoptic-style system model construction."""

import pytest

from repro.common.errors import MiningError
from repro.common.types import LogRecord
from repro.mining.model import INITIAL, TERMINAL, build_system_model
from repro.parsers import OracleParser


def _records(rows):
    return [
        LogRecord(content=content, session_id=session, truth_event=event)
        for session, event, content in rows
    ]


def _model(rows):
    return build_system_model(OracleParser().parse(_records(rows)))


SIMPLE = [
    ("s1", "a", "a happened"),
    ("s1", "b", "b happened"),
    ("s2", "a", "a happened"),
    ("s2", "b", "b happened"),
]


class TestBuildSystemModel:
    def test_states_include_initial_and_terminal(self):
        model = _model(SIMPLE)
        assert INITIAL in model.states
        assert TERMINAL in model.states
        assert {"a", "b"} <= model.states

    def test_transition_counts(self):
        model = _model(SIMPLE)
        assert model.transitions[(INITIAL, "a")] == 2
        assert model.transitions[("a", "b")] == 2
        assert model.transitions[("b", TERMINAL)] == 2

    def test_probabilities_normalized(self):
        rows = SIMPLE + [
            ("s3", "a", "a happened"),
            ("s3", "c", "c happened"),
        ]
        model = _model(rows)
        assert model.probability("a", "b") == pytest.approx(2 / 3)
        assert model.probability("a", "c") == pytest.approx(1 / 3)

    def test_probability_of_unknown_edge(self):
        model = _model(SIMPLE)
        assert model.probability("b", "a") == 0.0

    def test_successors(self):
        model = _model(SIMPLE)
        assert model.successors(INITIAL) == {"a": 2}

    def test_no_sessions_raises(self):
        parsed = OracleParser().parse(
            [LogRecord(content="x", truth_event="a")]
        )
        with pytest.raises(MiningError):
            build_system_model(parsed)

    def test_edge_difference_between_parsers(self):
        model_a = _model(SIMPLE)
        rows_extra = SIMPLE + [("s9", "z", "z happened")]
        model_b = _model(rows_extra)
        assert model_a.edge_difference(model_b) == 2  # INITIAL->z, z->TERM

    def test_edge_difference_is_symmetric(self):
        model_a = _model(SIMPLE)
        model_b = _model(SIMPLE + [("s9", "z", "z happened")])
        assert model_a.edge_difference(model_b) == model_b.edge_difference(
            model_a
        )

    def test_bad_parse_changes_model_layout(self):
        # §III-A: an unsuitable parser yields extra branches / layout.
        from repro.datasets import generate_hdfs_sessions
        from repro.evaluation.mining_impact import table3_parser_factory

        dataset = generate_hdfs_sessions(200, seed=4)
        oracle_model = build_system_model(
            OracleParser().parse(dataset.records)
        )
        slct_model = build_system_model(
            table3_parser_factory("SLCT").parse(dataset.records)
        )
        assert oracle_model.edge_difference(slct_model) > 0
