"""Tests for event count matrix construction."""

import numpy as np
import pytest

from repro.common.errors import MiningError
from repro.common.types import EventTemplate, LogRecord, ParseResult
from repro.mining.event_matrix import EventCountMatrix, build_event_matrix
from repro.parsers import OracleParser


def _parse(session_records):
    return OracleParser().parse(session_records)


class TestBuildEventMatrix:
    def test_shape(self, session_records):
        counts = build_event_matrix(_parse(session_records))
        assert counts.matrix.shape == (2, 4)
        assert counts.n_sessions == 2
        assert counts.n_events == 4

    def test_counts(self, session_records):
        counts = build_event_matrix(_parse(session_records))
        row = counts.row("s1")
        by_event = dict(zip(counts.event_ids, row))
        assert by_event["write"] == 2
        assert by_event["alloc"] == 1
        assert by_event.get("error", 0) == 0

    def test_row_sums_equal_session_lengths(self, session_records):
        counts = build_event_matrix(_parse(session_records))
        sums = counts.matrix.sum(axis=1)
        expected = {"s1": 4, "s2": 3}
        for session_id, total in zip(counts.session_ids, sums):
            assert total == expected[session_id]

    def test_sessionless_records_skipped(self):
        records = [
            LogRecord(content="a", session_id="s1", truth_event="E1"),
            LogRecord(content="b", session_id="", truth_event="E2"),
        ]
        counts = build_event_matrix(_parse(records))
        assert counts.session_ids == ("s1",)
        assert "E2" not in counts.event_ids

    def test_no_sessions_raises(self):
        records = [LogRecord(content="a", truth_event="E1")]
        with pytest.raises(MiningError):
            build_event_matrix(_parse(records))

    def test_outlier_column_included(self):
        result = ParseResult(
            events=[EventTemplate("E1", "a")],
            assignments=["E1", ParseResult.OUTLIER_EVENT_ID],
            records=[
                LogRecord(content="a", session_id="s1"),
                LogRecord(content="weird", session_id="s1"),
            ],
        )
        counts = build_event_matrix(result)
        assert ParseResult.OUTLIER_EVENT_ID in counts.event_ids


class TestEventCountMatrixValidation:
    def test_row_mismatch_rejected(self):
        with pytest.raises(MiningError):
            EventCountMatrix(
                matrix=np.zeros((2, 1)),
                session_ids=("s1",),
                event_ids=("e1",),
            )

    def test_column_mismatch_rejected(self):
        with pytest.raises(MiningError):
            EventCountMatrix(
                matrix=np.zeros((1, 2)),
                session_ids=("s1",),
                event_ids=("e1",),
            )
