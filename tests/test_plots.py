"""Tests for the ASCII plot renderer."""

import pytest

from repro.common.errors import EvaluationError
from repro.evaluation.plots import ascii_plot


SERIES = {
    "SLCT": [(400, 0.01), (4000, 0.1), (40000, 1.0)],
    "LKE": [(400, 1.0), (4000, 100.0)],
}


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot(SERIES, title="Fig2")
        assert "Fig2" in text
        assert "o=SLCT" in text
        assert "x=LKE" in text
        plot_rows = [line for line in text.splitlines() if "|" in line]
        assert any("o" in row for row in plot_rows)
        assert any("x" in row for row in plot_rows)

    def test_axis_labels_present(self):
        text = ascii_plot(SERIES)
        assert "400" in text
        assert "4e+04" in text or "40000" in text

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(EvaluationError):
            ascii_plot({"a": [(0, 1.0)]}, log_x=True)
        with pytest.raises(EvaluationError):
            ascii_plot({"a": [(1, 0.0)]}, log_y=True)

    def test_linear_scales_allow_zero(self):
        text = ascii_plot(
            {"a": [(0, 0.0), (10, 1.0)]}, log_x=False, log_y=False
        )
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            ascii_plot({})

    def test_grid_dimensions(self):
        text = ascii_plot(SERIES, width=30, height=8, title="")
        plot_rows = [line for line in text.splitlines() if "|" in line]
        assert len(plot_rows) == 8

    def test_extreme_points_land_on_edges(self):
        text = ascii_plot({"a": [(1, 1.0), (1000, 1000.0)]}, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        # Max y in top row, min y in bottom row.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_single_point(self):
        text = ascii_plot({"solo": [(10, 5.0)]})
        assert "o=solo" in text
