"""Tests for the five dataset template banks (Table I conformance)."""

import pytest

from repro.common.rng import make_rng
from repro.common.tokenize import template_matches, tokenize
from repro.datasets import iter_dataset_specs, get_dataset_spec
from repro.datasets.base import PLACEHOLDER_PATTERN
from repro.common.errors import DatasetError

SPECS = list(iter_dataset_specs())


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
class TestBankConformance:
    def test_event_count_matches_table1(self, spec):
        assert len(spec.bank) == spec.paper_events

    def test_event_ids_unique(self, spec):
        ids = [t.event_id for t in spec.bank]
        assert len(set(ids)) == len(ids)

    def test_truth_templates_unique(self, spec):
        truths = [t.truth_template for t in spec.bank]
        assert len(set(truths)) == len(truths)

    def test_positive_weights(self, spec):
        assert all(t.weight > 0 for t in spec.bank)

    def test_render_matches_own_truth(self, spec):
        rng = make_rng(5)
        for template in spec.bank:
            rendered = template.render(rng)
            assert template_matches(template.truth_template, rendered), (
                template.event_id,
                rendered,
            )

    def test_render_never_leaves_placeholders(self, spec):
        rng = make_rng(6)
        for template in spec.bank:
            assert not PLACEHOLDER_PATTERN.search(template.render(rng))

    def test_by_id_round_trip(self, spec):
        first = spec.bank.templates[0]
        assert spec.bank.by_id(first.event_id) is first

    def test_by_id_unknown_raises(self, spec):
        with pytest.raises(KeyError):
            spec.bank.by_id("NO_SUCH_EVENT")

    def test_token_lengths_positive(self, spec):
        low, high = spec.bank.length_range
        assert 1 <= low <= high


class TestSpecificBanks:
    def test_hdfs_has_29_canonical_events(self):
        spec = get_dataset_spec("HDFS")
        truth = spec.bank.truth_templates()
        assert truth["E3"] == "PacketResponder * for block * terminating"
        assert truth["E6"] == "Verification succeeded for *"

    def test_bgl_contains_generating_core_family(self):
        spec = get_dataset_spec("BGL")
        truths = set(spec.bank.truth_templates().values())
        assert "generating *" in truths

    def test_proxifier_is_tiny(self):
        assert len(get_dataset_spec("Proxifier").bank) == 8

    def test_reference_sizes_match_paper(self):
        sizes = {
            spec.name: spec.reference_size for spec in iter_dataset_specs()
        }
        assert sizes == {
            "BGL": 4_747_963,
            "HPC": 433_490,
            "Proxifier": 10_108,
            "HDFS": 11_175_629,
            "Zookeeper": 74_380,
        }

    def test_total_reference_size_matches_paper_total(self):
        total = sum(spec.reference_size for spec in iter_dataset_specs())
        assert total == 16_441_570  # §IV-A: "16,441,570 lines"


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_dataset_spec("hdfs").name == "HDFS"

    def test_unknown_raises(self):
        with pytest.raises(DatasetError):
            get_dataset_spec("nosuch")

    def test_iteration_order_is_table1(self):
        assert [s.name for s in SPECS] == [
            "BGL",
            "HPC",
            "Proxifier",
            "HDFS",
            "Zookeeper",
        ]
