"""Tests for the HDFS block-session simulator (RQ3 substrate)."""

import pytest

from repro.common.errors import DatasetError
from repro.common.tokenize import template_matches
from repro.datasets import generate_hdfs_sessions
from repro.datasets.hdfs import (
    ANOMALY_RATE,
    CLUSTER_NODES,
    HDFS_BANK,
    PAPER_TOTAL_ANOMALIES,
    PAPER_TOTAL_BLOCKS,
)


@pytest.fixture(scope="module")
def sessions():
    return generate_hdfs_sessions(400, seed=9)


class TestGeneration:
    def test_block_count(self, sessions):
        assert len(sessions.labels) == 400

    def test_deterministic(self):
        a = generate_hdfs_sessions(100, seed=1)
        b = generate_hdfs_sessions(100, seed=1)
        assert a.contents() == b.contents()
        assert a.labels == b.labels

    def test_anomaly_rate_close_to_paper(self):
        dataset = generate_hdfs_sessions(8000, seed=2)
        rate = len(dataset.anomaly_blocks) / len(dataset.labels)
        assert abs(rate - ANOMALY_RATE) < 0.01

    def test_paper_scale_constants(self):
        assert ANOMALY_RATE == PAPER_TOTAL_ANOMALIES / PAPER_TOTAL_BLOCKS
        assert 0.025 < ANOMALY_RATE < 0.035

    def test_zero_blocks_rejected(self):
        with pytest.raises(DatasetError):
            generate_hdfs_sessions(0)

    def test_bad_anomaly_rate_rejected(self):
        with pytest.raises(DatasetError):
            generate_hdfs_sessions(10, anomaly_rate=1.5)

    def test_anomaly_rate_zero_gives_all_normal(self):
        dataset = generate_hdfs_sessions(50, seed=3, anomaly_rate=0.0)
        assert not dataset.anomaly_blocks


class TestRecordStructure:
    def test_every_record_has_session(self, sessions):
        assert all(r.session_id for r in sessions.records)

    def test_session_ids_are_block_ids(self, sessions):
        assert all(
            r.session_id.startswith("blk_") for r in sessions.records
        )

    def test_block_id_pinned_in_content(self, sessions):
        for record in sessions.records[:200]:
            assert record.session_id in record.content

    def test_truth_events_match_bank(self, sessions):
        truth = HDFS_BANK.truth_templates()
        for record in sessions.records[:300]:
            assert template_matches(
                truth[record.truth_event], record.content
            )

    def test_ips_come_from_cluster_pool(self, sessions):
        import re

        pattern = re.compile(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}")
        pool = set(CLUSTER_NODES)
        for record in sessions.records[:300]:
            for ip in pattern.findall(record.content):
                assert ip in pool

    def test_scenarios_cover_all_blocks(self, sessions):
        assert set(sessions.scenarios) == set(sessions.labels)

    def test_scenario_labels_consistent(self, sessions):
        for block, scenario in sessions.scenarios.items():
            assert sessions.labels[block] == (scenario != "normal")


class TestSessionShapes:
    def test_every_session_allocates(self, sessions):
        first_events: dict[str, str] = {}
        for record in sessions.records:
            first_events.setdefault(record.session_id, record.truth_event)
        # E2 is allocateBlock; every lifecycle starts with it, though
        # interleaving means it may not be the first record *globally*.
        by_block: dict[str, list[str]] = {}
        for record in sessions.records:
            by_block.setdefault(record.session_id, []).append(
                record.truth_event
            )
        assert all("E2" in events for events in by_block.values())

    def test_normal_sessions_have_three_replicas(self, sessions):
        by_block: dict[str, list[str]] = {}
        for record in sessions.records:
            by_block.setdefault(record.session_id, []).append(
                record.truth_event
            )
        for block, scenario in sessions.scenarios.items():
            if scenario == "normal":
                assert by_block[block].count("E1") == 3

    def test_subtle_sessions_underreplicate(self, sessions):
        by_block: dict[str, list[str]] = {}
        for record in sessions.records:
            by_block.setdefault(record.session_id, []).append(
                record.truth_event
            )
        subtle = [
            block
            for block, scenario in sessions.scenarios.items()
            if scenario == "subtle"
        ]
        for block in subtle:
            assert by_block[block].count("E1") < 3
