"""Exactly-once ingestion certification: wire protocol v2 end to end.

Four layers of the delivery contract:

* **Wire format + dedup state** — HELLO/ACK/data-line round trips,
  :class:`DeliveryWindow` watermark/holdback semantics, and the seeded
  :func:`network_fault_schedule` shape (disjoint windows, all kinds).
* **Durable client spool** — :class:`DurableSender` spools before it
  wires, rebuilds sequence counters from a recovered spool, resends
  the unacked suffix, and raises :class:`DeliveryError` (exit 4 at the
  CLI) when the flush deadline expires with lines still spooled.
* **Bind retry** — both TCP front ends (:class:`LineServer` and
  :class:`TelemetryServer`) absorb an ``EADDRINUSE`` race with bounded
  backoff, exactly the respawn window the exactly-once story creates.
* **Certification** — a network-faulted run whose serve process is
  SIGKILLed mid-run (no drain) must, after restart + client resend,
  land per-tenant artifacts *byte-identical* to a calm run — in BOTH
  thread and process isolation — with
  ``repro_delivery_duplicates_suppressed_total > 0`` proving the dedup
  windows (restored from journal replay / checkpoints) did real work.

The fault schedule is seeded; CI sweeps ``REPRO_NET_SEED`` so
different partition/half-close/duplicate/reorder/ack-drop scripts all
certify the same invariants.
"""

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.common.errors import DeliveryError, ValidationError
from repro.common.net import bind_with_retry, retry_eaddrinuse
from repro.observability import Telemetry, TelemetryServer
from repro.parsers import make_parser
from repro.resilience import (
    NET_KINDS,
    NetworkFault,
    network_fault_schedule,
)
from repro.resilience.durability import read_jsonl_payloads
from repro.resilience.faults import NET_PARTITION
from repro.service import DurableSender, IngestionService, LineServer
from repro.service.protocol import (
    DUPLICATE,
    PENDING,
    DeliveryWindow,
    ack_line,
    data_line,
    hello_line,
    parse_ack,
    parse_data,
    parse_hello,
)

#: CI sweeps this; local runs use the default.
NET_SEED = int(os.environ.get("REPRO_NET_SEED", "7"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _env_with_src() -> dict:
    env = os.environ.copy()
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _factory():
    return make_parser("Drain")


def _tenant_lines(tenant: str, n: int, start: int = 0) -> list[tuple[str, str]]:
    return [
        (
            tenant,
            f"Connection from 10.0.{start + i}.{i % 7} "
            f"port {3000 + start + i} established",
        )
        for i in range(n)
    ]


class TestWireFormat:
    def test_hello_round_trip(self):
        assert parse_hello("HELLO v2 sender-1") == "sender-1"
        assert parse_hello(
            hello_line("a.b-c_9").decode().rstrip("\n")
        ) == "a.b-c_9"

    def test_hello_rejects_garbage(self):
        assert parse_hello("HELLO v1 sender") is None
        assert parse_hello("HELLO v2") is None
        assert parse_hello("HELLO v2 bad/id") is None
        assert parse_hello("alpha\tplain v1 line") is None
        with pytest.raises(ValidationError):
            hello_line("no spaces allowed here!")

    def test_data_line_round_trip(self):
        encoded = data_line(7, "alpha", "pkt received")
        assert encoded == b"7 alpha\tpkt received\n"
        seq, payload = parse_data(encoded.decode().rstrip("\n"))
        assert seq == 7
        assert payload == "alpha\tpkt received"

    def test_data_rejects_unsequenced(self):
        assert parse_data("alpha\tno seq here") is None
        assert parse_data("0 alpha\tzero is not a sequence") is None
        assert parse_data("x7 alpha\tnot a digit") is None

    def test_ack_round_trip(self):
        assert parse_ack(ack_line("beta", 41).decode().rstrip("\n")) == (
            "beta",
            41,
        )
        assert parse_ack("ACK beta") is None
        assert parse_ack("NAK beta 3") is None
        assert parse_ack("ACK beta x") is None


class TestDeliveryWindow:
    def test_in_order_release_advances_watermark(self):
        window = DeliveryWindow()
        for seq in (1, 2, 3):
            status, released = window.observe(seq, f"p{seq}")
            assert status == "release"
            assert released == [(seq, f"p{seq}")]
        assert window.high == 3

    def test_duplicates_suppressed(self):
        window = DeliveryWindow()
        window.observe(1, "a")
        assert window.observe(1, "a") == (DUPLICATE, [])
        window.observe(3, "c")  # held back
        assert window.observe(3, "c") == (DUPLICATE, [])

    def test_gap_held_back_and_released_in_order(self):
        window = DeliveryWindow()
        assert window.observe(2, "b") == (PENDING, [])
        assert window.observe(4, "d") == (PENDING, [])
        status, released = window.observe(1, "a")
        assert status == "release"
        # 1 releases itself and the now-contiguous 2; 4 still waits.
        assert released == [(1, "a"), (2, "b")]
        assert window.high == 2
        status, released = window.observe(3, "c")
        assert released == [(3, "c"), (4, "d")]
        assert window.high == 4
        assert window.pending == 0

    def test_holdback_bound_drops_unacked(self):
        window = DeliveryWindow(holdback=2)
        window.observe(10, "x")
        window.observe(11, "y")
        # Past the bound: classified pending but NOT buffered — the
        # client never got an ack, so it resends.
        assert window.observe(12, "z") == (PENDING, [])
        assert window.pending == 2

    def test_advance_covers_held_sequences(self):
        window = DeliveryWindow()
        window.observe(3, "c")
        window.advance(5)
        assert window.high == 5
        assert window.pending == 0
        assert window.observe(3, "c") == (DUPLICATE, [])

    def test_validation(self):
        with pytest.raises(ValidationError):
            DeliveryWindow(high=-1)
        with pytest.raises(ValidationError):
            DeliveryWindow(holdback=0)
        with pytest.raises(ValidationError):
            DeliveryWindow().observe(0, "x")


class TestNetworkFaultSchedule:
    def test_deterministic_for_a_seed(self):
        assert network_fault_schedule(NET_SEED) == (
            network_fault_schedule(NET_SEED)
        )

    def test_different_seeds_differ(self):
        assert network_fault_schedule(7) != network_fault_schedule(101)

    def test_disjoint_windows_and_full_kind_coverage(self):
        schedule = network_fault_schedule(NET_SEED, n=5, span=200)
        assert len(schedule) == 5
        positions = [fault.at_line for fault in schedule]
        assert positions == sorted(positions)
        for index, fault in enumerate(schedule):
            assert index * 40 <= fault.at_line < (index + 1) * 40
        # With n >= len(NET_KINDS) every fault family is exercised.
        assert {fault.kind for fault in schedule} == set(NET_KINDS)

    def test_fault_validation(self):
        with pytest.raises(ValidationError):
            NetworkFault(kind="gremlin", at_line=0)
        with pytest.raises(ValidationError):
            NetworkFault(kind=NET_PARTITION, at_line=-1)
        with pytest.raises(ValidationError):
            NetworkFault(kind=NET_PARTITION, at_line=0, cut_fraction=1.5)

    def test_sender_rejects_colliding_script(self, tmp_path):
        faults = [
            NetworkFault(kind=NET_PARTITION, at_line=3),
            NetworkFault(kind=NET_PARTITION, at_line=3),
        ]
        with pytest.raises(ValidationError):
            DurableSender(
                "127.0.0.1", 1, "c", str(tmp_path / "s.jsonl"), faults=faults
            )


class TestDurableSenderSpool:
    def test_send_spools_without_a_connection(self, tmp_path):
        spool = str(tmp_path / "spool.jsonl")
        sender = DurableSender("127.0.0.1", 1, "client-a", spool)
        assert sender.send("alpha", "one") == 1
        assert sender.send("alpha", "two") == 2
        assert sender.send("beta", "uno") == 1
        assert sender.spool_depth == 3
        assert os.path.exists(spool)

    def test_recovery_rebuilds_sequences_conservatively(self, tmp_path):
        spool = str(tmp_path / "spool.jsonl")
        first = DurableSender("127.0.0.1", 1, "client-a", spool)
        first.send("alpha", "one")
        first.send("alpha", "two")
        first.close()
        # A fresh sender over the same spool: everything is unacked
        # (the watermark died with the process) and the per-tenant
        # sequence counters continue, never restart.
        second = DurableSender("127.0.0.1", 1, "client-a", spool)
        assert second.spool_depth == 2
        assert second.send("alpha", "three") == 3

    def test_flush_deadline_raises_delivery_error(self, tmp_path):
        # A port from a just-closed listener: nothing is there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        sender = DurableSender(
            "127.0.0.1",
            dead_port,
            "client-a",
            str(tmp_path / "spool.jsonl"),
            base_backoff=0.01,
            max_backoff=0.05,
        )
        sender.send("alpha", "stranded line")
        with pytest.raises(DeliveryError):
            sender.flush(timeout=0.3)
        # The line survives the failed flush, safe in the spool.
        assert sender.spool_depth == 1

    def test_validates_client_id(self, tmp_path):
        with pytest.raises(ValidationError):
            DurableSender(
                "127.0.0.1", 1, "bad id!", str(tmp_path / "s.jsonl")
            )
        sender = DurableSender(
            "127.0.0.1", 1, "ok", str(tmp_path / "s.jsonl")
        )
        with pytest.raises(ValidationError):
            sender.send("alpha", "two\nlines")

    def test_flush_delivers_and_compacts(self, tmp_path):
        telemetry = Telemetry.create()
        service = IngestionService(
            str(tmp_path / "data"),
            _factory,
            protocol="v2",
            telemetry=telemetry,
        )
        with LineServer(service) as server:
            sender = DurableSender(
                server.host,
                server.port,
                "client-a",
                str(tmp_path / "spool.jsonl"),
            )
            for tenant, content in _tenant_lines("alpha", 12):
                sender.send(tenant, content)
            summary = sender.flush(timeout=30.0)
            sender.close()
        assert summary["delivered"] == 12
        assert sender.spool_depth == 0
        # Acks were counted server-side, and the shard consumed
        # exactly the unique stream.
        assert telemetry.metrics.value("repro_delivery_acked_total") >= 1
        drained = service.drain()
        assert drained["tenants"]["alpha"]["lines"] == 12

    def test_crashed_client_resend_is_suppressed(self, tmp_path):
        """The heart of exactly-once: a client that lost its ack state
        resends everything; the restored windows drop every byte."""
        telemetry = Telemetry.create()
        service = IngestionService(
            str(tmp_path / "data"),
            _factory,
            protocol="v2",
            telemetry=telemetry,
        )
        spool = str(tmp_path / "spool.jsonl")
        crashed = str(tmp_path / "crashed.jsonl")
        with LineServer(service) as server:
            first = DurableSender(
                server.host, server.port, "client-a", spool
            )
            for tenant, content in _tenant_lines("alpha", 10):
                first.send(tenant, content)
            # Snapshot the spool *before* the flush compacts it: this
            # is the exact disk state a client killed before its acks
            # arrived would recover from.
            shutil.copy(spool, crashed)
            first.flush(timeout=30.0)
            first.close()

            second = DurableSender(
                server.host, server.port, "client-a", crashed
            )
            assert second.spool_depth == 10
            summary = second.flush(timeout=30.0)
            second.close()
        assert summary["delivered"] == 10
        suppressed = telemetry.metrics.value(
            "repro_delivery_duplicates_suppressed_total", tenant="alpha"
        )
        assert suppressed == 10
        drained = service.drain()
        assert drained["tenants"]["alpha"]["lines"] == 10


class TestBindRetry:
    """Satellite: both TCP front ends absorb the EADDRINUSE race."""

    def _occupy(self) -> tuple[socket.socket, int]:
        occupier = socket.socket()
        occupier.bind(("127.0.0.1", 0))
        occupier.listen(1)
        return occupier, occupier.getsockname()[1]

    def test_line_server_retries_occupied_port(self, tmp_path):
        occupier, port = self._occupy()
        released = []

        def sleep(_delay: float) -> None:
            # The previous life's socket goes away while we back off.
            if not released:
                occupier.close()
                released.append(True)

        service = IngestionService(str(tmp_path), _factory)
        server = LineServer(service, port=port, sleep=sleep)
        try:
            server.start()
            assert server.port == port
            assert released, "start() never needed the retry path"
        finally:
            server.stop()
            if not released:
                occupier.close()

    def test_line_server_exhausts_retries_honestly(self, tmp_path):
        occupier, port = self._occupy()
        try:
            service = IngestionService(str(tmp_path), _factory)
            server = LineServer(
                service, port=port, bind_retries=2, sleep=lambda _d: None
            )
            with pytest.raises(OSError):
                server.start()
        finally:
            occupier.close()

    def test_telemetry_server_retries_occupied_port(self):
        occupier, port = self._occupy()
        released = []

        def sleep(_delay: float) -> None:
            if not released:
                occupier.close()
                released.append(True)

        telemetry = Telemetry.create()
        server = TelemetryServer(
            telemetry.metrics, port=port, sleep=sleep
        )
        try:
            server.start()
            assert released, "start() never needed the retry path"
        finally:
            server.stop()
            if not released:
                occupier.close()

    def test_bind_with_retry_propagates_other_errors(self):
        calls = []
        with pytest.raises(OSError):
            # An unroutable host address fails immediately — only the
            # EADDRINUSE race is retried.
            bind_with_retry(
                "256.256.256.256", 0, sleep=lambda d: calls.append(d)
            )
        assert calls == []

    def test_retry_eaddrinuse_backs_off_exponentially(self):
        import errno

        delays = []
        attempts = []

        def attempt():
            attempts.append(True)
            if len(attempts) < 4:
                raise OSError(errno.EADDRINUSE, "in use")
            return "bound"

        result = retry_eaddrinuse(
            attempt, retries=5, backoff=0.1, sleep=delays.append
        )
        assert result == "bound"
        assert delays == [0.1, 0.2, 0.4]


class TestV2Service:
    def test_v1_client_still_ingests_on_v2_server(self, tmp_path):
        service = IngestionService(
            str(tmp_path), _factory, protocol="v2"
        )
        with LineServer(service) as server:
            conn = socket.create_connection(
                (server.host, server.port), timeout=5
            )
            payload = "".join(
                f"{tenant}\t{content}\n"
                for tenant, content in _tenant_lines("alpha", 15)
            )
            conn.sendall(payload.encode())
            conn.close()
            deadline = time.monotonic() + 10
            while (
                time.monotonic() < deadline and service.submitted < 15
            ):
                time.sleep(0.05)
        summary = service.drain()
        # Fire-and-forget lines route verbatim: no acks, no loss.
        assert summary["tenants"]["alpha"]["lines"] == 15
        assert summary["protocol_rejects"] == 0

    def test_submit_seq_requires_v2(self, tmp_path):
        service = IngestionService(str(tmp_path), _factory)
        with pytest.raises(ValidationError):
            service.submit_line_v2("1 alpha\tline", "client-a")

    def test_unsequenced_v2_line_quarantined(self, tmp_path):
        service = IngestionService(
            str(tmp_path), _factory, protocol="v2"
        )
        outcome, tenant, high = service.submit_line_v2(
            "alpha\tforgot the sequence", "client-a", "tcp:test"
        )
        assert (outcome, tenant, high) == ("protocol", None, None)
        service.drain()
        payloads = read_jsonl_payloads(
            str(tmp_path / "service.quarantine.jsonl")
        )
        assert payloads[0]["reason"] == "protocol"

    def test_cli_rejects_replay_with_v2(self, tmp_path):
        code = main(
            [
                "serve", "Drain", str(tmp_path / "d"),
                "--replay", "nope.log", "--protocol", "v2",
            ]
        )
        assert code == 2


class _ServeHarness:
    """Subprocess serve helpers shared by the certification tests."""

    def _serve(self, data_dir, *extra: str) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "Drain",
                str(data_dir), "--protocol", "v2", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env_with_src(),
            cwd=REPO_ROOT,
            # Own process group: SIGKILLing the group takes forked
            # shard workers down with the parent, so a killed life
            # leaves no orphan writing to the tenant directories.
            preexec_fn=os.setsid,
        )

    def _port(self, proc: subprocess.Popen) -> int:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            banner = proc.stdout.readline()
            if banner.startswith("serving on "):
                return int(banner.rsplit(":", 1)[1])
            if not banner and proc.poll() is not None:
                break
        raise AssertionError("serve never published its port")

    def _kill_group(self, proc: subprocess.Popen, sig: int) -> None:
        try:
            os.killpg(proc.pid, sig)
        except ProcessLookupError:  # pragma: no cover - already gone
            pass


class TestExactlyOnceCertification(_ServeHarness):
    """Faulted + SIGKILLed runs converge byte-identical to calm ones."""

    ALPHA = 30
    BETA = 20

    def _lines(self) -> list[tuple[str, str]]:
        return _tenant_lines("alpha", self.ALPHA) + _tenant_lines(
            "beta", self.BETA
        )

    def _calm_run(self, data_dir) -> None:
        proc = self._serve(data_dir)
        try:
            port = self._port(proc)
            sender = DurableSender(
                "127.0.0.1",
                port,
                "certified-client",
                str(data_dir.parent / "calm.spool.jsonl"),
            )
            for tenant, content in self._lines():
                sender.send(tenant, content)
            sender.flush(timeout=60.0)
            sender.close()
            self._kill_group(proc, signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                self._kill_group(proc, signal.SIGKILL)
        assert proc.returncode == 0, out

    def _faulted_run(self, data_dir, *extra: str) -> str:
        """Two serve lives around a SIGKILL; returns the metrics path."""
        spool = str(data_dir.parent / f"{data_dir.name}.spool.jsonl")
        crashed = str(
            data_dir.parent / f"{data_dir.name}.crashed.spool.jsonl"
        )
        lines = self._lines()

        # Life 1: a client honestly delivering through a seeded fault
        # storm.  Every line is acked (flush returns), so the server
        # durably owns the whole stream — then SIGKILL, before any
        # drain: no manifests, no finalized artifacts.
        proc = self._serve(data_dir, *extra)
        try:
            port = self._port(proc)
            faults = network_fault_schedule(
                NET_SEED, n=5, span=len(lines)
            )
            sender = DurableSender(
                "127.0.0.1", port, "certified-client", spool,
                faults=faults, base_backoff=0.01, max_backoff=0.2,
            )
            for tenant, content in lines:
                sender.send(tenant, content)
            # The pre-flush spool is the disk state of a client that
            # dies before processing any ack: life 2 resends it all.
            shutil.copy(spool, crashed)
            summary = sender.flush(timeout=120.0)
            sender.close()
            assert summary["delivered"] == len(lines)
            self._kill_group(proc, signal.SIGKILL)
            proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                self._kill_group(proc, signal.SIGKILL)
        assert proc.returncode == -signal.SIGKILL

        # Life 2: the server restores delivery state (journal replay /
        # checkpoints) and a recovered client resends everything; the
        # windows must suppress every byte, then a graceful drain
        # finalizes the artifacts.
        metrics = str(data_dir.parent / f"{data_dir.name}.metrics.json")
        proc = self._serve(data_dir, "--metrics-out", metrics, *extra)
        try:
            port = self._port(proc)
            sender = DurableSender(
                "127.0.0.1", port, "certified-client", crashed,
                base_backoff=0.01, max_backoff=0.2,
            )
            assert sender.spool_depth == len(lines)
            sender.flush(timeout=120.0)
            sender.close()
            self._kill_group(proc, signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                self._kill_group(proc, signal.SIGKILL)
        assert proc.returncode == 0, out
        return metrics

    def _certify(self, calm_dir, faulted_dir, metrics_path) -> None:
        for tenant in ("alpha", "beta"):
            code = main(
                [
                    "verify-run",
                    str(faulted_dir / tenant / "out.manifest.json"),
                    "--against",
                    str(calm_dir / tenant / "out.manifest.json"),
                    "--ignore", "out.checkpoint.json",
                ]
            )
            assert code == 0, f"{tenant} diverged from the calm run"
        samples = json.loads(open(metrics_path).read())["samples"]
        for tenant in ("alpha", "beta"):
            suppressed = samples.get(
                "repro_delivery_duplicates_suppressed_total"
                f'{{tenant="{tenant}"}}',
                0.0,
            )
            assert suppressed > 0, (
                f"{tenant}: life 2 never suppressed a duplicate — "
                "the dedup windows did not survive the SIGKILL"
            )
        assert samples.get("repro_delivery_acked_total", 0.0) > 0

    def test_thread_isolation_converges(self, tmp_path):
        calm = tmp_path / "calm"
        self._calm_run(calm)
        faulted = tmp_path / "faulted"
        metrics = self._faulted_run(faulted)
        self._certify(calm, faulted, metrics)

    def test_process_isolation_converges(self, tmp_path):
        calm = tmp_path / "calm"
        self._calm_run(calm)
        faulted = tmp_path / "faulted-proc"
        metrics = self._faulted_run(
            faulted, "--isolation", "process", "--checkpoint-every", "8"
        )
        self._certify(calm, faulted, metrics)


class TestSendCLI(_ServeHarness):
    def _write_input(self, path, pairs) -> None:
        path.write_text(
            "".join(f"{tenant}\t{content}\n" for tenant, content in pairs)
        )

    def test_round_trip_with_metrics(self, tmp_path, capsys):
        data = tmp_path / "data"
        batch = tmp_path / "batch.log"
        self._write_input(batch, _tenant_lines("alpha", 8))
        proc = self._serve(data)
        try:
            port = self._port(proc)
            code = main(
                [
                    "send", "127.0.0.1", str(port), str(batch),
                    "--client-id", "cli-client",
                    "--spool", str(tmp_path / "spool.jsonl"),
                    "--metrics-out", str(tmp_path / "send.json"),
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "delivered 8 line(s) as cli-client" in out
            self._kill_group(proc, signal.SIGTERM)
            serve_out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                self._kill_group(proc, signal.SIGKILL)
        assert proc.returncode == 0, serve_out
        samples = json.loads(
            (tmp_path / "send.json").read_text()
        )["samples"]
        assert samples.get("repro_delivery_spool_depth") == 0.0
        assert "repro_delivery_resend_total" in samples
        assert (data / "alpha" / "out.manifest.json").exists()

    def test_interrupted_send_exits_4_then_resumes(self, tmp_path, capsys):
        # No server: the flush deadline expires, exit 4, spool intact.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        batch = tmp_path / "batch.log"
        self._write_input(batch, _tenant_lines("alpha", 5))
        spool = tmp_path / "spool.jsonl"
        code = main(
            [
                "send", "127.0.0.1", str(dead_port), str(batch),
                "--spool", str(spool), "--timeout", "0.3",
            ]
        )
        assert code == 4
        assert "error:" in capsys.readouterr().err
        assert spool.exists()

        # A server appears; rerunning with no input finishes the
        # delivery from the spool alone.
        data = tmp_path / "data"
        proc = self._serve(data)
        try:
            port = self._port(proc)
            code = main(
                [
                    "send", "127.0.0.1", str(port),
                    "--spool", str(spool),
                ]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "recovered 5 unacknowledged line(s)" in out
            assert "delivered 5 line(s)" in out
            self._kill_group(proc, signal.SIGTERM)
            serve_out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                self._kill_group(proc, signal.SIGKILL)
        assert proc.returncode == 0, serve_out
        structured = (data / "alpha" / "out.structured").read_text()
        assert len(structured.splitlines()) == 5

    def test_malformed_input_exits_3(self, tmp_path, capsys):
        batch = tmp_path / "batch.log"
        batch.write_text("no tab on this line\n")
        code = main(
            [
                "send", "127.0.0.1", "1", str(batch),
                "--spool", str(tmp_path / "spool.jsonl"),
            ]
        )
        assert code == 3
        assert "expected tenant<TAB>content" in capsys.readouterr().err
