"""Crash-consistency tests for the durability layer.

Three families of guarantees are exercised here:

* **Atomic whole-file writes** — :class:`AtomicWriter` either commits
  the full new content or leaves the previous file untouched, under
  injected EIO/ENOSPC/fsync faults at scripted byte offsets.
* **Framed JSONL recovery** — :func:`recover_jsonl` finds the longest
  valid prefix of a length+CRC32-framed file for *every possible*
  truncation offset (the property sweep walks each byte), and
  :class:`QuarantineSink` reopened after a simulated crash neither
  loses nor duplicates records.
* **Run manifests** — ``verify_manifest`` catches a single flipped
  byte in any covered artifact, and the ``verify-run`` CLI maps that
  to the data-error exit code (3).

The fault layer is deterministic: every schedule is derived from a
seed (``REPRO_IO_SEED`` in CI) so failures replay exactly.
"""

import json
import os
import zlib

import pytest

from repro.cli import main
from repro.common.errors import ArtifactWriteError, IntegrityError
from repro.resilience.durability import (
    AtomicWriter,
    DurableJsonlWriter,
    RunManifest,
    atomic_write_text,
    ensure_artifact,
    frame_record,
    load_manifest,
    parse_frame,
    read_jsonl_payloads,
    reconcile_jsonl,
    recover_jsonl,
    verify_manifest,
)
from repro.resilience.faults import (
    IO_EIO,
    IO_ENOSPC,
    IO_FSYNC,
    IO_TORN,
    FaultyIO,
    IoFault,
    io_fault_schedule,
)
from repro.resilience.quarantine import QuarantineRecord, QuarantineSink

IO_SEED = int(os.environ.get("REPRO_IO_SEED", "7"))


def _records(n):
    return [
        QuarantineRecord(
            source="x.log",
            line_no=i,
            byte_offset=i * 10,
            reason="undecodable",
            detail=f"bad byte at {i}",
            preview=f"line-{i}",
        )
        for i in range(n)
    ]


class TestAtomicWriter:
    def test_commits_content_and_removes_temp(self, tmp_path):
        path = tmp_path / "out.txt"
        with AtomicWriter(str(path)) as writer:
            writer.write("hello\n")
            writer.write("world\n")
        assert path.read_text() == "hello\nworld\n"
        assert list(tmp_path.iterdir()) == [path]

    def test_exception_preserves_previous_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("previous\n")
        with pytest.raises(RuntimeError):
            with AtomicWriter(str(path)) as writer:
                writer.write("partial")
                raise RuntimeError("mid-write crash")
        assert path.read_text() == "previous\n"
        assert list(tmp_path.iterdir()) == [path]

    @pytest.mark.parametrize("kind", [IO_EIO, IO_ENOSPC])
    def test_write_fault_leaves_target_untouched(self, tmp_path, kind):
        path = tmp_path / "out.txt"
        path.write_text("previous\n")
        io = FaultyIO([IoFault(kind=kind, at_bytes=3)])
        with pytest.raises(ArtifactWriteError):
            with AtomicWriter(str(path), io=io) as writer:
                writer.write("replacement that never lands\n")
        assert path.read_text() == "previous\n"
        assert io.fired, "the scripted fault must actually fire"

    def test_fsync_fault_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("previous\n")
        io = FaultyIO([IoFault(kind=IO_FSYNC, at_call=1)])
        with pytest.raises(ArtifactWriteError):
            with AtomicWriter(str(path), io=io) as writer:
                writer.write("never committed\n")
        assert path.read_text() == "previous\n"

    def test_atomic_write_text_retries_transient_fault(self, tmp_path):
        path = tmp_path / "out.txt"
        io = FaultyIO([IoFault(kind=IO_EIO, at_bytes=2)])
        atomic_write_text(str(path), "retried content\n", io=io)
        assert path.read_text() == "retried content\n"
        assert len(io.fired) == 1

    def test_atomic_write_text_exhausts_retries(self, tmp_path):
        path = tmp_path / "out.txt"
        io = FaultyIO(
            [IoFault(kind=IO_EIO, at_bytes=0, times=5)]
        )
        with pytest.raises(ArtifactWriteError):
            atomic_write_text(str(path), "never lands\n", io=io)
        assert not path.exists()

    def test_ensure_artifact_never_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ensure_artifact(str(path))
        assert path.exists() and path.read_bytes() == b""
        path.write_bytes(b"existing content\n")
        ensure_artifact(str(path))
        assert path.read_bytes() == b"existing content\n"


class TestFraming:
    def test_frame_round_trip(self):
        payload = {"kind": "quarantine", "line_no": 3}
        line = frame_record(payload)
        assert line.endswith(b"\n")
        assert parse_frame(line) == payload

    def test_frame_rejects_corrupt_crc(self):
        line = bytearray(frame_record({"a": 1}))
        line[-3] ^= 0xFF  # flip a payload byte; CRC no longer matches
        assert parse_frame(bytes(line)) is None

    def test_payload_stays_greppable(self):
        line = frame_record({"reason": "oversized"})
        assert b'"reason": "oversized"' in line


class TestRecovery:
    def test_recovers_every_torn_byte_offset(self, tmp_path):
        """Property sweep: truncate a framed file at *every* byte.

        Whatever the cut point, recovery must keep exactly the records
        whose final newline survived, and the truncated file must
        recover to itself (idempotence).
        """
        payloads = [{"i": i, "body": "x" * i} for i in range(8)]
        data = b"".join(frame_record(p) for p in payloads)
        boundaries = []
        offset = 0
        for payload in payloads:
            offset += len(frame_record(payload))
            boundaries.append(offset)
        path = tmp_path / "torn.jsonl"
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            recovery = recover_jsonl(str(path))
            expected_records = sum(1 for b in boundaries if b <= cut)
            expected_bytes = max(
                [0] + [b for b in boundaries if b <= cut]
            )
            assert len(recovery.records) == expected_records, f"cut={cut}"
            assert recovery.valid_bytes == expected_bytes, f"cut={cut}"
            assert os.path.getsize(path) == expected_bytes
            again = recover_jsonl(str(path))
            assert not again.truncated

    def test_recovers_torn_tail_with_seeded_garbage(self, tmp_path):
        from random import Random

        rng = Random(IO_SEED)
        payloads = [{"i": i} for i in range(5)]
        data = b"".join(frame_record(p) for p in payloads)
        garbage = bytes(
            rng.randrange(256) for _ in range(rng.randrange(1, 64))
        )
        path = tmp_path / "garbage.jsonl"
        path.write_bytes(data + garbage)
        recovery = recover_jsonl(str(path))
        assert len(recovery.records) == 5
        assert recovery.truncated
        assert path.read_bytes() == data

    def test_reconcile_truncates_to_checkpointed_offset(self, tmp_path):
        payloads = [{"i": i} for i in range(6)]
        frames = [frame_record(p) for p in payloads]
        path = tmp_path / "q.jsonl"
        path.write_bytes(b"".join(frames))
        keep = len(frames[0]) + len(frames[1])
        reconcile_jsonl(str(path), keep)
        assert read_jsonl_payloads(str(path)) == payloads[:2]

    def test_reconcile_rejects_lost_records(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_bytes(frame_record({"i": 0}))
        with pytest.raises(IntegrityError):
            reconcile_jsonl(str(path), os.path.getsize(path) + 100)

    def test_reconcile_rejects_mid_record_offset(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_bytes(frame_record({"i": 0}) + frame_record({"i": 1}))
        with pytest.raises(IntegrityError):
            reconcile_jsonl(str(path), len(frame_record({"i": 0})) + 1)


class TestDurableJsonlWriter:
    def test_append_and_read_back(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        with DurableJsonlWriter(path) as writer:
            for i in range(4):
                writer.append({"i": i})
        assert read_jsonl_payloads(path) == [{"i": i} for i in range(4)]

    def test_reopen_after_torn_crash_recovers(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        with DurableJsonlWriter(path) as writer:
            writer.append({"i": 0})
            writer.append({"i": 1})
        with open(path, "ab") as handle:
            handle.write(b"00000040 deadbeef {\"torn")  # crash mid-append
        with DurableJsonlWriter(path) as writer:
            writer.append({"i": 2})
        assert read_jsonl_payloads(path) == [{"i": i} for i in range(3)]

    def test_transient_write_fault_is_retried(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        io = FaultyIO([IoFault(kind=IO_EIO, at_bytes=5)])
        with DurableJsonlWriter(path, io=io) as writer:
            writer.append({"i": 0})
            writer.append({"i": 1})
        assert read_jsonl_payloads(path) == [{"i": 0}, {"i": 1}]
        assert io.fired

    def test_persistent_enospc_diverts_to_alternate_path(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        io = FaultyIO(
            [
                IoFault(
                    kind=IO_ENOSPC,
                    at_bytes=0,
                    times=3,
                    path_contains="w.jsonl",
                )
            ]
        )
        # Three firings: both primary attempts fail, the writer
        # diverts, the first alternate attempt fails too, and the
        # retry on the alternate finally lands the record.
        writer = DurableJsonlWriter(path, io=io)
        writer.append({"i": 0})
        writer.close()
        assert writer.path == path + ".alt"
        assert read_jsonl_payloads(writer.path) == [{"i": 0}]

    def test_offset_tracks_bytes_and_records(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        writer = DurableJsonlWriter(path)
        writer.append({"i": 0})
        bytes_1, records_1 = writer.offset()
        writer.append({"i": 1})
        bytes_2, records_2 = writer.offset()
        writer.close()
        assert (records_1, records_2) == (1, 2)
        assert bytes_2 == os.path.getsize(path)
        assert 0 < bytes_1 < bytes_2


class TestQuarantineSinkDurability:
    def test_reopen_after_crash_loses_and_duplicates_nothing(
        self, tmp_path
    ):
        """First life appends 3 records and 'crashes' with a torn tail;
        the second life appends 2 more.  All 5 must read back once."""
        path = str(tmp_path / "q.jsonl")
        first = QuarantineSink(path)
        for record in _records(3):
            first.add(record)
        first.close()
        with open(path, "ab") as handle:
            handle.write(b"000000ff 00000000 {\"never-finished")
        second = QuarantineSink(path)
        for record in _records(5)[3:]:
            second.add(record)
        second.close()
        loaded = QuarantineSink.read(path)
        assert [entry.line_no for entry in loaded] == [0, 1, 2, 3, 4]

    def test_offset_survives_reopen(self, tmp_path):
        path = str(tmp_path / "q.jsonl")
        sink = QuarantineSink(path)
        for record in _records(2):
            sink.add(record)
        offset = sink.offset()
        sink.close()
        assert QuarantineSink(path).offset() == offset
        assert offset[1] == 2


class TestCheckpointDurability:
    def _engine(self):
        from functools import partial

        from repro.parsers import make_parser
        from repro.streaming import StreamingParser

        return StreamingParser(
            partial(make_parser, "SLCT"), flush_size=4
        )

    def test_fsync_failure_keeps_previous_checkpoint(self, tmp_path):
        from repro.common.errors import CheckpointError
        from repro.common.types import LogRecord
        from repro.resilience import load_checkpoint, save_checkpoint

        path = str(tmp_path / "cp.json")
        engine = self._engine()
        engine.feed(LogRecord(content="alpha one"))
        save_checkpoint(path, engine, records_consumed=1)
        before = open(path, "rb").read()
        engine.feed(LogRecord(content="alpha two"))
        io = FaultyIO([IoFault(kind=IO_FSYNC, at_call=1, times=4)])
        with pytest.raises(CheckpointError):
            save_checkpoint(path, engine, records_consumed=2, io=io)
        assert open(path, "rb").read() == before
        assert load_checkpoint(path).records_consumed == 1

    def test_checkpoint_records_artifact_offsets(self, tmp_path):
        from repro.common.types import LogRecord
        from repro.resilience import load_checkpoint, save_checkpoint

        path = str(tmp_path / "cp.json")
        engine = self._engine()
        engine.feed(LogRecord(content="alpha one"))
        save_checkpoint(
            path,
            engine,
            records_consumed=1,
            artifacts={"q.jsonl": {"bytes": 120, "records": 2}},
        )
        loaded = load_checkpoint(path)
        assert loaded.artifacts == {
            "q.jsonl": {"bytes": 120, "records": 2}
        }


class TestManifest:
    def _run_artifacts(self, tmp_path):
        events = tmp_path / "out.events"
        events.write_text("E1\talpha <*>\nE2\tbeta\n")
        quarantine = tmp_path / "q.jsonl"
        quarantine.write_bytes(
            frame_record({"i": 0}) + frame_record({"i": 1})
        )
        return events, quarantine

    def test_round_trip_verifies(self, tmp_path):
        events, quarantine = self._run_artifacts(tmp_path)
        manifest = RunManifest(run={"command": "test"})
        manifest.add(str(events), codec="lines")
        manifest.add(str(quarantine), codec="framed")
        path = str(tmp_path / "manifest.json")
        manifest.write(path)
        report = verify_manifest(path)
        assert report.ok, report.describe()
        loaded = load_manifest(path)
        assert loaded["artifacts"]["q.jsonl"]["records"] == 2

    def test_detects_single_flipped_byte_in_each_artifact(
        self, tmp_path
    ):
        events, quarantine = self._run_artifacts(tmp_path)
        manifest = RunManifest(run={"command": "test"})
        manifest.add(str(events), codec="lines")
        manifest.add(str(quarantine), codec="framed")
        path = str(tmp_path / "manifest.json")
        manifest.write(path)
        for artifact in (events, quarantine):
            original = artifact.read_bytes()
            flipped = bytearray(original)
            flipped[len(flipped) // 2] ^= 0x01
            artifact.write_bytes(bytes(flipped))
            report = verify_manifest(path)
            assert not report.ok, f"{artifact} flip went undetected"
            assert any(
                artifact.name in problem for problem in report.problems
            )
            artifact.write_bytes(original)
        assert verify_manifest(path).ok

    def test_detects_missing_artifact(self, tmp_path):
        events, _ = self._run_artifacts(tmp_path)
        manifest = RunManifest()
        manifest.add(str(events), codec="lines")
        path = str(tmp_path / "manifest.json")
        manifest.write(path)
        events.unlink()
        report = verify_manifest(path)
        assert not report.ok
        assert any("missing" in p for p in report.problems)


class TestVerifyRunCli:
    def _stream(self, tmp_path, extra=()):
        argv = [
            "stream",
            "SLCT",
            "--dataset",
            "HDFS",
            "--size",
            "400",
            "--seed",
            "7",
            "--output-stem",
            str(tmp_path / "out"),
            "--manifest-out",
            str(tmp_path / "manifest.json"),
            *extra,
        ]
        assert main(argv) == 0

    def test_clean_run_verifies_exit_zero(self, tmp_path, capsys):
        self._stream(tmp_path)
        assert main(["verify-run", str(tmp_path / "manifest.json")]) == 0
        assert "verified" in capsys.readouterr().out

    def test_flipped_byte_exits_data_error(self, tmp_path, capsys):
        self._stream(tmp_path)
        target = tmp_path / "out.structured"
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0x01
        target.write_bytes(bytes(data))
        assert main(["verify-run", str(tmp_path / "manifest.json")]) == 3
        assert "mismatch" in capsys.readouterr().out

    def test_against_agreeing_and_disagreeing_manifests(
        self, tmp_path, capsys
    ):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir()
        b.mkdir()
        self._stream(a)
        self._stream(b)
        assert (
            main(
                [
                    "verify-run",
                    str(a / "manifest.json"),
                    "--against",
                    str(b / "manifest.json"),
                ]
            )
            == 0
        )
        assert "manifests agree" in capsys.readouterr().out
        c = tmp_path / "c"
        c.mkdir()
        argv = [
            "stream",
            "SLCT",
            "--dataset",
            "HDFS",
            "--size",
            "500",  # different size -> different outputs
            "--seed",
            "7",
            "--output-stem",
            str(c / "out"),
            "--manifest-out",
            str(c / "manifest.json"),
        ]
        assert main(argv) == 0
        assert (
            main(
                [
                    "verify-run",
                    str(a / "manifest.json"),
                    "--against",
                    str(c / "manifest.json"),
                ]
            )
            == 3
        )
        assert "disagree" in capsys.readouterr().out


class TestIoFaultSchedule:
    def test_deterministic_for_a_seed(self):
        assert io_fault_schedule(IO_SEED) == io_fault_schedule(IO_SEED)

    def test_different_seeds_differ(self):
        schedules = {
            tuple((f.kind, f.at_bytes) for f in io_fault_schedule(seed))
            for seed in range(20)
        }
        assert len(schedules) > 1

    def test_cli_survives_io_faults_and_artifacts_verify(
        self, tmp_path, capsys
    ):
        """An --io-faults run must either complete with verifiable
        artifacts or fail with the documented exit codes — never
        commit a corrupt artifact silently."""
        manifest = tmp_path / "manifest.json"
        code = main(
            [
                "stream",
                "SLCT",
                "--dataset",
                "HDFS",
                "--size",
                "400",
                "--seed",
                "7",
                "--io-faults",
                str(IO_SEED),
                "--quarantine-path",
                str(tmp_path / "q.jsonl"),
                "--faults",
                "11",
                "--output-stem",
                str(tmp_path / "out"),
                "--manifest-out",
                str(manifest),
            ]
        )
        capsys.readouterr()
        assert code in (0, 3, 4)
        if code == 0:
            assert main(["verify-run", str(manifest)]) == 0


class TestNoBareWrites:
    #: Output-path modules that must route every write through the
    #: durability layer.  ``open(..., "w")`` outside it reintroduces
    #: the truncate-then-crash window this PR closed.
    GUARDED = [
        "src/repro/cli.py",
        "src/repro/observability/exporters.py",
        "src/repro/observability/events.py",
        "src/repro/observability/tracing.py",
        "src/repro/resilience/checkpoint.py",
        "src/repro/resilience/quarantine.py",
        "src/repro/datasets/loader.py",
    ]

    def test_no_bare_write_mode_opens_on_output_paths(self):
        import re

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        pattern = re.compile(r"""open\([^)]*["'][wax]b?["']""")
        offenders = []
        for relpath in self.GUARDED:
            path = os.path.join(root, relpath)
            with open(path, encoding="utf-8") as handle:
                for line_no, line in enumerate(handle, start=1):
                    if pattern.search(line):
                        offenders.append(f"{relpath}:{line_no}: {line.strip()}")
        assert not offenders, (
            "bare write-mode open() on an output path (use AtomicWriter "
            "/ DurableJsonlWriter):\n" + "\n".join(offenders)
        )
