"""Checkpoint/resume certification: a killed stream must finalize identically.

The core guarantee: for every kill point, saving a checkpoint mid-stream,
rebuilding a fresh engine from it, feeding only the remaining records,
and finalizing produces — under the ``prefix`` flush policy — the exact
``.events`` / ``.structured`` byte content of an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from functools import partial

import pytest

from repro.common.errors import CheckpointError
from repro.datasets import generate_dataset, get_dataset_spec
from repro.mining.event_matrix import EventMatrixAccumulator
from repro.parsers import make_parser
from repro.resilience import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_accumulator,
    restore_streaming_parser,
    save_checkpoint,
)
from repro.streaming import ParseSession, StreamingParser


#: Engine parser for the kill-point sweeps.  CI's durability matrix
#: sets REPRO_STREAM_PARSER to run the same sweeps Drain-headed.
STREAM_PARSER = os.environ.get("REPRO_STREAM_PARSER", "IPLoM")


def _engine(
    flush_policy="prefix", flush_size=64, parser=None, **kwargs
) -> StreamingParser:
    return StreamingParser(
        partial(make_parser, parser or STREAM_PARSER),
        flush_policy=flush_policy,
        flush_size=flush_size,
        **kwargs,
    )


def _output_bytes(result):
    return (
        "\n".join(result.events_file_lines()),
        "\n".join(result.structured_file_lines()),
    )


def _run_uninterrupted(records, **engine_kwargs):
    engine = _engine(**engine_kwargs)
    session = ParseSession(engine)
    session.consume(iter(records))
    return _output_bytes(session.finalize())


def _run_killed_and_resumed(records, kill_at, checkpoint_path, **engine_kwargs):
    # First life: feed up to the kill point, checkpoint, and "die"
    # (no finalize — the process is gone).
    parser_name = engine_kwargs.get("parser") or STREAM_PARSER
    engine = _engine(**engine_kwargs)
    session = ParseSession(engine)
    for record in records[:kill_at]:
        session.feed(record)
    save_checkpoint(
        checkpoint_path,
        engine,
        records_consumed=kill_at,
        parser=parser_name,
        source="<test>",
        accumulator=session.accumulator,
    )
    del engine, session
    # Second life: restore and feed only the remainder.
    checkpoint = load_checkpoint(checkpoint_path)
    assert checkpoint.records_consumed == kill_at
    resumed = restore_streaming_parser(
        checkpoint, partial(make_parser, parser_name)
    )
    session = ParseSession(resumed)
    restored = restore_accumulator(checkpoint)
    if restored is not None:
        session.accumulator = restored
    for record in records[kill_at:]:
        session.feed(record)
    return _output_bytes(session.finalize())


@pytest.mark.parametrize("dataset", ["HDFS", "Proxifier", "BGL"])
def test_resume_is_byte_identical_across_datasets(dataset, tmp_path):
    records = generate_dataset(
        get_dataset_spec(dataset), 400, seed=11
    ).records
    baseline = _run_uninterrupted(records)
    for kill_at in (1, 63, 64, 200, 399):
        resumed = _run_killed_and_resumed(
            records, kill_at, str(tmp_path / f"cp-{kill_at}.json")
        )
        assert resumed == baseline, f"divergence killing at {kill_at}"


@pytest.mark.parametrize("dataset", ["HDFS", "Proxifier", "BGL"])
def test_resume_is_byte_identical_with_drain(dataset, tmp_path):
    # The Drain-headed sweep: kill-point resume must stay byte-exact
    # when the flush parser is the incremental Drain backend.
    records = generate_dataset(
        get_dataset_spec(dataset), 400, seed=11
    ).records
    baseline = _run_uninterrupted(records, parser="Drain")
    for kill_at in (1, 63, 64, 200, 399):
        resumed = _run_killed_and_resumed(
            records,
            kill_at,
            str(tmp_path / f"cp-{kill_at}.json"),
            parser="Drain",
        )
        assert resumed == baseline, f"divergence killing at {kill_at}"


def test_resume_every_kth_record_small_stream(toy_records, tmp_path):
    # Exhaustive sweep on a tiny stream: kill after every single record.
    records = toy_records * 6  # 48 lines, crosses the flush boundary
    baseline = _run_uninterrupted(records, flush_size=16)
    for kill_at in range(1, len(records)):
        resumed = _run_killed_and_resumed(
            records,
            kill_at,
            str(tmp_path / "cp.json"),
            flush_size=16,
        )
        assert resumed == baseline, f"divergence killing at {kill_at}"


def test_resume_preserves_counters_and_cache(tmp_path):
    records = generate_dataset(
        get_dataset_spec("HDFS"), 300, seed=5
    ).records
    full = _engine()
    for record in records:
        full.feed(record)
    path = str(tmp_path / "cp.json")
    half = _engine()
    for record in records[:150]:
        half.feed(record)
    save_checkpoint(path, half, records_consumed=150)
    resumed = restore_streaming_parser(
        load_checkpoint(path), partial(make_parser, "IPLoM")
    )
    for record in records[150:]:
        resumed.feed(record)
    assert resumed.counters.lines == full.counters.lines
    assert resumed.counters.flushes == full.counters.flushes
    assert resumed.counters.exact_hits == full.counters.exact_hits
    assert resumed.counters.template_hits == full.counters.template_hits


def test_accumulator_survives_checkpoint(session_records, tmp_path):
    engine = _engine(flush_size=4)
    session = ParseSession(engine, track_matrix=True)
    for record in session_records[:4]:
        session.feed(record)
    path = str(tmp_path / "cp.json")
    save_checkpoint(
        path, engine, records_consumed=4, accumulator=session.accumulator
    )
    checkpoint = load_checkpoint(path)
    restored = restore_accumulator(checkpoint)
    assert restored is not None
    assert restored.state() == session.accumulator.state()


def test_accumulator_round_trip_standalone():
    accumulator = EventMatrixAccumulator()
    accumulator.add("s1", 0)
    accumulator.add("s1", 2)
    accumulator.add("s2", 1)
    clone = EventMatrixAccumulator()
    clone.restore_state(accumulator.state())
    assert clone.state() == accumulator.state()


# ----------------------------------------------------------------------
# Failure modes
# ----------------------------------------------------------------------


def test_load_missing_checkpoint_fails(tmp_path):
    with pytest.raises(CheckpointError, match="not found"):
        load_checkpoint(str(tmp_path / "nope.json"))


def test_load_corrupt_checkpoint_fails(tmp_path):
    path = tmp_path / "cp.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(CheckpointError, match="could not read"):
        load_checkpoint(str(path))
    path.write_text('"a bare string"', encoding="utf-8")
    with pytest.raises(CheckpointError, match="JSON object"):
        load_checkpoint(str(path))


def test_load_version_mismatch_fails(tmp_path):
    engine = _engine()
    path = str(tmp_path / "cp.json")
    save_checkpoint(path, engine, records_consumed=0)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    data["version"] = CHECKPOINT_VERSION + 1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    with pytest.raises(CheckpointError, match="schema version"):
        load_checkpoint(str(path))


def test_restore_config_mismatch_fails(toy_records, tmp_path):
    engine = _engine(flush_size=32)
    for record in toy_records:
        engine.feed(record)
    path = str(tmp_path / "cp.json")
    save_checkpoint(path, engine, records_consumed=len(toy_records))
    checkpoint = load_checkpoint(path)
    # Restoring into an engine built with a different configuration
    # must refuse rather than silently diverge.
    other = _engine(flush_size=16)
    with pytest.raises(CheckpointError, match="flush_size"):
        other.restore_state(checkpoint.engine)


def test_checkpoint_write_is_atomic(toy_records, tmp_path):
    engine = _engine()
    for record in toy_records:
        engine.feed(record)
    path = str(tmp_path / "cp.json")
    save_checkpoint(path, engine, records_consumed=4)
    first = load_checkpoint(path)
    # A second snapshot replaces the file wholesale; no .tmp remains.
    save_checkpoint(path, engine, records_consumed=8)
    assert not (tmp_path / "cp.json.tmp").exists()
    assert load_checkpoint(path).records_consumed == 8
    assert first.records_consumed == 4


def test_save_checkpoint_to_unwritable_path_fails(toy_records, tmp_path):
    engine = _engine()
    with pytest.raises(CheckpointError, match="could not write"):
        save_checkpoint(
            str(tmp_path / "no-such-dir" / "cp.json"),
            engine,
            records_consumed=0,
        )


# ----------------------------------------------------------------------
# Faulted kill points: crash + IO faults, resumed via the CLI
# ----------------------------------------------------------------------

_FAULT_SIZE = 150
_FAULT_SEED = 11
_FAULT_CORRUPTION_SEED = 13
_FAULT_EVERY = 10


def _faulted_cli_stream(workdir, extra):
    from repro.cli import main

    argv = [
        "stream",
        "IPLoM",
        "--dataset",
        "HDFS",
        "--size",
        str(_FAULT_SIZE),
        "--seed",
        str(_FAULT_SEED),
        "--faults",
        str(_FAULT_CORRUPTION_SEED),
        "--fault-every",
        str(_FAULT_EVERY),
        "--flush-policy",
        "prefix",
        "--flush-size",
        "32",
        "--quarantine-path",
        str(workdir / "q.jsonl"),
        "--checkpoint",
        str(workdir / "cp.json"),
        "--output-stem",
        str(workdir / "out"),
        "--manifest-out",
        str(workdir / "manifest.json"),
        *extra,
    ]
    assert main(argv) == 0


def _faulted_first_life(workdir, kill_at, io_script):
    """One run 'life' that dies: feed *kill_at* records under injected
    IO faults, checkpoint (with artifact offsets), keep feeding a few
    more so quarantine appends land *after* the snapshot, then crash —
    leaving a torn frame on the quarantine tail."""
    from repro.datasets import iter_dataset
    from repro.resilience import (
        FaultyIO,
        IoFault,
        QuarantineSink,
        corrupt_records,
    )

    records = corrupt_records(
        iter_dataset(
            get_dataset_spec("HDFS"), _FAULT_SIZE, seed=_FAULT_SEED
        ),
        seed=_FAULT_CORRUPTION_SEED,
        every=_FAULT_EVERY,
    )
    io = FaultyIO([IoFault(**fault) for fault in io_script])
    qpath = str(workdir / "q.jsonl")
    sink = QuarantineSink(qpath, io=io)
    engine = StreamingParser(
        partial(make_parser, "IPLoM"),
        flush_policy="prefix",
        flush_size=32,
        cache_capacity=4096,
        max_flush_retries=3,
        error_policy="quarantine",
        quarantine=sink,
    )
    session = ParseSession(engine)
    consumed = 0
    for record in records:
        session.feed(record)
        consumed += 1
        if consumed == kill_at:
            qbytes, qrecords = sink.offset()
            save_checkpoint(
                str(workdir / "cp.json"),
                engine,
                records_consumed=consumed,
                parser="IPLoM",
                source="dataset:HDFS",
                accumulator=session.accumulator,
                artifacts={
                    qpath: {"bytes": qbytes, "records": qrecords}
                },
            )
        if consumed == kill_at + 12:
            break
    sink.close()
    # The crash itself: a frame torn mid-append survives on the tail.
    with open(qpath, "ab") as handle:
        handle.write(b'000000f0 deadbeef {"reason": "never-fini')
    return io


@pytest.mark.parametrize(
    "io_script",
    [
        pytest.param(
            [
                {"kind": "torn", "at_bytes": 150},
                {"kind": "torn", "at_bytes": 900},
            ],
            id="torn-writes",
        ),
        pytest.param(
            [
                {"kind": "enospc", "at_bytes": 40},
                {"kind": "enospc", "at_bytes": 700},
            ],
            id="enospc",
        ),
    ],
)
def test_faulted_kill_points_resume_to_fault_free_manifest(
    tmp_path, io_script
):
    """The acceptance sweep: for each kill point, a first life that
    suffers scripted torn-write/ENOSPC faults, checkpoints, keeps
    appending, and dies with a torn quarantine tail must — after
    ``stream --resume`` reconciles the JSONL tail against the
    checkpoint — finalize to artifacts whose manifest is identical to
    an uninterrupted fault-free run's."""
    from repro.resilience import diff_manifests, verify_manifest

    baseline = tmp_path / "baseline"
    baseline.mkdir()
    _faulted_cli_stream(baseline, [])
    assert verify_manifest(str(baseline / "manifest.json")).ok

    fired_total = 0
    for kill_at in (5, 40, 97):
        workdir = tmp_path / f"kill-{kill_at}"
        workdir.mkdir()
        io = _faulted_first_life(workdir, kill_at, io_script)
        fired_total += len(io.fired)
        _faulted_cli_stream(workdir, ["--resume"])
        report = verify_manifest(str(workdir / "manifest.json"))
        assert report.ok, report.describe()
        differences = diff_manifests(
            str(baseline / "manifest.json"),
            str(workdir / "manifest.json"),
            ignore=("cp.json",),
        )
        assert not differences, (
            f"kill at {kill_at}: resumed artifacts diverged from the "
            f"fault-free run:\n" + "\n".join(differences)
        )
    assert fired_total > 0, "the scripted IO faults never fired"
