"""Unit tests for repro.common.rng (determinism guarantees)."""

from repro.common.rng import DEFAULT_SEED, make_numpy_rng, make_rng, spawn


class TestMakeRng:
    def test_same_seed_same_stream(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_none_uses_default(self):
        assert make_rng(None).random() == make_rng(DEFAULT_SEED).random()


class TestMakeNumpyRng:
    def test_deterministic(self):
        a = make_numpy_rng(3).integers(0, 1000, 5)
        b = make_numpy_rng(3).integers(0, 1000, 5)
        assert (a == b).all()


class TestSpawn:
    def test_label_keys_stream(self):
        assert spawn(1, "a").random() != spawn(1, "b").random()

    def test_reproducible(self):
        assert spawn(1, "a").random() == spawn(1, "a").random()

    def test_seed_keys_stream(self):
        assert spawn(1, "a").random() != spawn(2, "a").random()

    def test_none_seed_stable(self):
        assert spawn(None, "x").random() == spawn(None, "x").random()
