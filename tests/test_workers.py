"""Process-isolated shard workers: supervision, poison pills, fencing.

The contracts certified here:

* **Byte-identity under crashes** — a process-isolated shard whose
  worker is SIGKILLed, exits nonzero, or hangs mid-stream finalizes
  ``.events``/``.structured``/quarantine artifacts byte-identical to
  both a fault-free thread-mode run and a fault-free process run
  (at-least-once replay + checkpoint skip + journal replay).
* **Poison pills** — a record that kills its replayer
  ``poison_threshold`` consecutive times is diverted to quarantine
  with ``poison:<tenant>`` provenance after a deterministic number of
  worker deaths, and the stream completes without it.
* **Fencing** — a shard dying on *distinct* records accumulates
  breaker failures until it is fenced: no more restarts, submits
  refused, neighbors unaffected.
* **Crash storm** — a seeded whole-service storm (``REPRO_PROC_SEED``
  sweeps the script in CI) across three tenants drains every tenant
  byte-identical to a calm run.

All supervisor deadlines are monotonic with injectable clocks; the
wall-clock audit test pins that property at the source level.
"""

import filecmp
import functools
import os
import threading
import time

import pytest

from repro.common.errors import ValidationError
from repro.common.types import LogRecord
from repro.observability import Telemetry
from repro.parsers import make_parser
from repro.resilience import (
    ProcessFault,
    crash_storm_schedule,
    process_fault_schedule,
    read_jsonl_payloads,
)
from repro.resilience.durability import scan_framed
from repro.resilience.faults import (
    PROC_EXIT,
    PROC_HANG,
    PROC_KILL,
    PROC_KINDS,
    PROC_SLOW_START,
)
from repro.service import (
    IngestionService,
    ShardSupervisor,
    TenantShard,
    replay_lines,
)
from repro.service.workers import (
    FENCED,
    JOURNAL_NAME,
    STATE_DRAINED,
    STATE_FENCED,
    BatchJournal,
    supervisor_status,
)

PROC_SEED = int(os.environ.get("REPRO_PROC_SEED", "7"))

#: Aggressive timing so fault runs resolve in well under a second of
#: real waiting: heartbeats every 20ms, watchdog at 400ms.
FAST = dict(
    heartbeat_interval=0.02,
    watchdog=0.4,
    drain_timeout=60.0,
)


def _factory():
    return functools.partial(make_parser, "Drain")


def _lines(n, start=0):
    return [f"conn from host{i % 5} port {i}" for i in range(start, start + n)]


def _feed(supervisor, lines):
    for line in lines:
        supervisor.submit(LogRecord(content=line))


def _reference(tmp_path, tenant, lines):
    """Fault-free thread-mode artifacts to certify byte-identity against."""
    ref_dir = str(tmp_path / "reference")
    shard = TenantShard(tenant, ref_dir, _factory(), parser_name="Drain")
    for line in lines:
        shard.submit(LogRecord(content=line))
    shard.drain()
    return os.path.join(ref_dir, tenant)


def _assert_identical(ref_dir, got_dir, names=("out.events", "out.structured")):
    for name in names:
        ref, got = os.path.join(ref_dir, name), os.path.join(got_dir, name)
        assert os.path.exists(ref) == os.path.exists(got), name
        if os.path.exists(ref):
            assert filecmp.cmp(ref, got, shallow=False), (
                f"{name} diverged from the fault-free run"
            )


class TestProcessFaultSchedule:
    def test_same_seed_same_script(self):
        assert process_fault_schedule(PROC_SEED) == process_fault_schedule(
            PROC_SEED
        )
        assert process_fault_schedule(1) != process_fault_schedule(2)

    def test_faults_land_in_disjoint_windows(self):
        faults = process_fault_schedule(PROC_SEED, n=4, span=100)
        records = [fault.at_record for fault in faults]
        assert records == sorted(records)
        for index, record in enumerate(records):
            assert index * 25 <= record < (index + 1) * 25
        assert all(fault.kind in PROC_KINDS for fault in faults)

    def test_storm_sub_seeds_are_tenant_stable(self):
        small = crash_storm_schedule(PROC_SEED, ["a", "b"])
        grown = crash_storm_schedule(PROC_SEED, ["a", "b", "c"])
        assert small["a"] == grown["a"]
        assert small["b"] == grown["b"]

    def test_rejects_unschedulable_kinds_and_bad_shapes(self):
        with pytest.raises(ValidationError):
            process_fault_schedule(1, kinds=(PROC_SLOW_START,))
        with pytest.raises(ValidationError):
            process_fault_schedule(1, n=0)
        with pytest.raises(ValidationError):
            process_fault_schedule(1, n=10, span=5)
        with pytest.raises(ValidationError):
            crash_storm_schedule(1, [])
        with pytest.raises(ValidationError):
            ProcessFault("segfault")
        with pytest.raises(ValidationError):
            ProcessFault(PROC_EXIT, exit_code=0)
        with pytest.raises(ValidationError):
            ProcessFault(PROC_KILL, lives=())


class TestBatchJournal:
    def test_append_then_reset_rewrites_atomically(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = BatchJournal(path)
        journal.append(0, LogRecord(content="a"))
        journal.append(1, LogRecord(content="b"))
        payloads, _ = scan_framed(open(path, "rb").read())
        assert [p["index"] for p in payloads] == [0, 1]
        journal.reset([(1, LogRecord(content="b"))])
        payloads, _ = scan_framed(open(path, "rb").read())
        assert [p["index"] for p in payloads] == [1]
        journal.remove()
        assert not os.path.exists(path)

    def test_init_discards_a_previous_life(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        BatchJournal(path).append(0, LogRecord(content="stale"))
        journal = BatchJournal(path)
        payloads, _ = scan_framed(open(path, "rb").read())
        assert payloads == []
        journal.remove()


class TestSupervisedShard:
    def test_clean_process_run_matches_thread_run(self, tmp_path):
        lines = _lines(60)
        ref = _reference(tmp_path, "t", lines)
        data = str(tmp_path / "proc")
        sup = ShardSupervisor(
            "t", data, _factory(), parser_name="Drain",
            checkpoint_every=16, **FAST,
        )
        _feed(sup, lines)
        summary = sup.drain()
        assert summary["lines"] == 60
        assert summary["restarts"] == 0
        assert summary["isolation"] == "process"
        assert sup.state == STATE_DRAINED
        _assert_identical(ref, os.path.join(data, "t"))
        # drained → journal fully retired
        assert not os.path.exists(os.path.join(data, "t", JOURNAL_NAME))

    @pytest.mark.parametrize(
        "fault",
        [
            ProcessFault(PROC_KILL, at_record=23),
            ProcessFault(PROC_EXIT, at_record=23, exit_code=9),
            ProcessFault(PROC_HANG, at_record=23, hang_seconds=30.0),
        ],
        ids=["sigkill", "exit-nonzero", "hang"],
    )
    def test_crash_restart_resumes_byte_identical(self, tmp_path, fault):
        lines = _lines(60)
        ref = _reference(tmp_path, "t", lines)
        data = str(tmp_path / "proc")
        sup = ShardSupervisor(
            "t", data, _factory(), parser_name="Drain",
            checkpoint_every=10, faults=(fault,), **FAST,
        )
        _feed(sup, lines)
        summary = sup.drain()
        assert summary["restarts"] == 1
        assert summary["lines"] == 60, "no record lost or duplicated"
        _assert_identical(ref, os.path.join(data, "t"))

    def test_restart_reason_metrics(self, tmp_path):
        telemetry = Telemetry.create(trace_id="t")
        faults = (
            ProcessFault(PROC_KILL, at_record=5, lives=(1,)),
            ProcessFault(PROC_EXIT, at_record=25, lives=(2,), exit_code=3),
            ProcessFault(PROC_HANG, at_record=45, lives=(3,),
                         hang_seconds=30.0),
        )
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            telemetry=telemetry, checkpoint_every=10, faults=faults, **FAST,
        )
        _feed(sup, _lines(60))
        summary = sup.drain()
        assert summary["restarts"] == 3
        value = telemetry.metrics.value
        assert value("repro_shard_restarts_total",
                     tenant="t", reason="signal") == 1.0
        assert value("repro_shard_restarts_total",
                     tenant="t", reason="exit") == 1.0
        assert value("repro_shard_restarts_total",
                     tenant="t", reason="hung") == 1.0
        kinds = [e["kind"] for e in telemetry.events.events]
        assert kinds.count("worker_exit") == 3
        assert kinds.count("worker_restart") == 3
        assert "worker_drained" in kinds
        # lines synced across the process boundary
        assert value("repro_service_lines_total", tenant="t") == 60.0

    def test_worker_spans_adopted_across_process_boundary(self, tmp_path):
        telemetry = Telemetry.create(trace_id="t")
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            telemetry=telemetry, **FAST,
        )
        _feed(sup, _lines(10))
        sup.drain()
        names = [span.name for span in telemetry.tracer.spans]
        assert "shard_worker" in names
        worker_span = next(
            span for span in telemetry.tracer.spans
            if span.name == "shard_worker"
        )
        assert worker_span.attrs["lines"] == 10
        assert worker_span.span_id.startswith("t-l1-")

    def test_poison_record_diverted_after_exact_death_count(self, tmp_path):
        """The pill dies N+1 times total: one unattributed normal-mode
        death, then ``poison_threshold`` attributed careful-replay
        deaths — then it is quarantined and the stream completes."""
        threshold = 2
        telemetry = Telemetry.create(trace_id="t")
        pill = ProcessFault(PROC_KILL, at_record=30, lives=(1, 2, 3, 4, 5, 6))
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            telemetry=telemetry, checkpoint_every=10, faults=(pill,),
            poison_threshold=threshold, fence_threshold=10, **FAST,
        )
        _feed(sup, _lines(60))
        summary = sup.drain()
        assert sup.state == STATE_DRAINED, "no crash loop, no fence"
        assert summary["restarts"] == threshold + 1
        assert summary["lines"] == 59, "everything but the pill parsed"
        assert summary["quarantined"] == 1
        quarantined = read_jsonl_payloads(
            os.path.join(str(tmp_path), "t", "out.quarantine.jsonl")
        )
        assert len(quarantined) == 1
        record = quarantined[0]
        assert record["source"] == "poison:t"
        assert record["line_no"] == 30
        assert record["reason"] == "poison-pill"
        assert telemetry.metrics.value(
            "repro_shard_poison_records_total", tenant="t"
        ) == 1.0
        assert any(
            e["kind"] == "poison_diverted" for e in telemetry.events.events
        )

    def test_distinct_record_deaths_fence_the_shard(self, tmp_path):
        telemetry = Telemetry.create(trace_id="t")
        faults = tuple(
            ProcessFault(PROC_KILL, at_record=record, lives=(life,))
            for life, record in enumerate((3, 5, 7, 9), start=1)
        )
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            telemetry=telemetry, checkpoint_every=100, faults=faults,
            poison_threshold=5, fence_threshold=3, **FAST,
        )
        _feed(sup, _lines(20))
        deadline = time.monotonic() + 30
        while sup.state != STATE_FENCED and time.monotonic() < deadline:
            time.sleep(0.02)
        assert sup.state == STATE_FENCED
        assert sup.restarts == 3, "exactly fence_threshold deaths"
        assert sup.breaker_open
        assert sup.submit(LogRecord(content="refused")) == FENCED
        summary = sup.drain()
        assert summary["fenced"] is True
        assert summary["manifest"] is None
        assert any(
            e["kind"] == "worker_fenced" for e in telemetry.events.events
        )

    def test_slow_start_delays_but_completes(self, tmp_path):
        fault = ProcessFault(PROC_SLOW_START, delay_seconds=0.1)
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            faults=(fault,), **FAST,
        )
        _feed(sup, _lines(5))
        summary = sup.drain()
        assert summary["lines"] == 5
        assert summary["restarts"] == 0

    def test_kill_during_drain_restarts_and_finalizes(self, tmp_path):
        lines = _lines(40)
        ref = _reference(tmp_path, "t", lines)
        data = str(tmp_path / "proc")
        fault = ProcessFault(PROC_KILL, at_drain=True, lives=(1,))
        sup = ShardSupervisor(
            "t", data, _factory(), parser_name="Drain",
            checkpoint_every=10, faults=(fault,), **FAST,
        )
        _feed(sup, lines)
        summary = sup.drain()
        assert summary["restarts"] == 1
        assert summary["lines"] == 40
        _assert_identical(ref, os.path.join(data, "t"))

    def test_budget_is_rejected_in_process_mode(self, tmp_path):
        with pytest.raises(ValidationError):
            ShardSupervisor(
                "t", str(tmp_path), _factory(), parser_name="Drain",
                budget=object(),
            )

    def test_bad_timing_shapes_are_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            ShardSupervisor(
                "t", str(tmp_path), _factory(),
                watchdog=0.1, heartbeat_interval=0.2,
            )
        with pytest.raises(ValidationError):
            ShardSupervisor(
                "t", str(tmp_path), _factory(), poison_threshold=0
            )
        with pytest.raises(ValidationError):
            ShardSupervisor(
                "t", str(tmp_path), _factory(), fence_threshold=0
            )


class TestMonotonicDeadlines:
    def test_no_wall_clock_in_service_sources(self):
        """Satellite audit: deadlines in service/ must be monotonic.

        ``time.time()`` is steppable by NTP — a deadline computed from
        it can fire years early or never.  The service layer's only
        wall-clock use is the tracer's export timestamps, which live
        in observability/, not here.
        """
        import repro.service as service_pkg

        root = os.path.dirname(service_pkg.__file__)
        for name in sorted(os.listdir(root)):
            if not name.endswith(".py"):
                continue
            with open(os.path.join(root, name), encoding="utf-8") as handle:
                source = handle.read()
            assert "time.time(" not in source, (
                f"service/{name} uses wall-clock time; deadlines must "
                f"use time.monotonic()"
            )

    def test_watchdog_fires_on_injected_clock_not_wall_time(self, tmp_path):
        """A hung worker is declared dead when the *injected* clock
        passes the deadline — no real waiting involved."""

        class FakeClock:
            def __init__(self):
                self.now = 0.0
                self._lock = threading.Lock()

            def __call__(self):
                with self._lock:
                    return self.now

            def advance(self, seconds):
                with self._lock:
                    self.now += seconds

        clock = FakeClock()
        fault = ProcessFault(PROC_HANG, at_record=5, hang_seconds=120.0)
        sup = ShardSupervisor(
            "t", str(tmp_path), _factory(), parser_name="Drain",
            checkpoint_every=4, heartbeat_interval=0.02,
            watchdog=900.0, drain_timeout=60.0,
            faults=(fault,), clock=clock, sleep=lambda _s: None,
        )
        _feed(sup, _lines(10))
        deadline = time.monotonic() + 10
        while sup._stats.get("position", 0) < 5 and (
            time.monotonic() < deadline
        ):
            time.sleep(0.02)
        # The worker now sleeps inside record 5.  Real time passing
        # must NOT trip the 900s watchdog...
        time.sleep(0.3)
        assert sup.restarts == 0
        # ...but the injected clock jumping past it must.
        clock.advance(1000.0)
        summary = sup.drain()
        assert summary["restarts"] == 1
        assert summary["lines"] == 10

    def test_heartbeat_age_tracks_injected_clock(self, tmp_path):
        sup = ShardSupervisor.__new__(ShardSupervisor)
        sup._clock = lambda: 42.0
        sup._last_seen = 40.0
        assert sup.heartbeat_age() == pytest.approx(2.0)


class TestCrashStormService:
    def test_storm_across_three_tenants_matches_calm_run(self, tmp_path):
        """ISSUE 8 acceptance: SIGKILL + hang + nonzero-exit across
        three tenants; every non-fenced tenant byte-identical to a
        fault-free run, plus a planted poison pill on a fourth."""
        tenants = ["alpha", "beta", "gamma"]
        per_tenant = 40
        lines = []
        for i in range(per_tenant * len(tenants)):
            tenant = tenants[i % len(tenants)]
            lines.append(f"{tenant}\tconn from host{i % 7} port {i}")

        calm_dir = str(tmp_path / "calm")
        calm = IngestionService(calm_dir, _factory(), parser_name="Drain")
        replay_lines(calm, lines)
        calm.drain()

        storm = crash_storm_schedule(
            PROC_SEED, tenants, faults_per_tenant=2, span=per_tenant,
            hang_seconds=30.0,
        )
        fired_kinds = {f.kind for faults in storm.values() for f in faults}
        storm_dir = str(tmp_path / "storm")
        service = IngestionService(
            storm_dir, _factory(), parser_name="Drain",
            isolation="process",
            worker_kwargs=dict(faults=storm, checkpoint_every=8, **FAST),
        )
        replay_lines(service, lines)
        summary = service.drain()
        total_restarts = 0
        for tenant in tenants:
            tenant_summary = summary["tenants"][tenant]
            assert not tenant_summary.get("fenced"), tenant
            assert tenant_summary["lines"] == per_tenant
            total_restarts += tenant_summary["restarts"]
            _assert_identical(
                os.path.join(calm_dir, tenant),
                os.path.join(storm_dir, tenant),
                names=("out.events", "out.structured",
                       "out.quarantine.jsonl"),
            )
        # every scheduled fault actually fired and was survived (the
        # schedule arms fault i in life i+1 precisely so none is
        # shadowed by an earlier restart)
        assert total_restarts == sum(len(f) for f in storm.values())
        assert fired_kinds, "schedule must not be empty"

    def test_storm_with_poison_tenant(self, tmp_path):
        threshold = 2
        pill = ProcessFault(PROC_KILL, at_record=13, lives=(1, 2, 3, 4, 5))
        service = IngestionService(
            str(tmp_path), _factory(), parser_name="Drain",
            isolation="process",
            worker_kwargs=dict(
                faults={"venom": (pill,)},
                checkpoint_every=8,
                poison_threshold=threshold,
                fence_threshold=10,
                **FAST,
            ),
        )
        lines = [f"venom\tconn from host{i % 5} port {i}" for i in range(30)]
        lines += [f"calm\tconn from host{i % 5} port {i}" for i in range(30)]
        replay_lines(service, lines)
        summary = service.drain()
        venom = summary["tenants"]["venom"]
        assert venom["restarts"] == threshold + 1
        assert venom["quarantined"] == 1
        quarantined = read_jsonl_payloads(
            os.path.join(str(tmp_path), "venom", "out.quarantine.jsonl")
        )
        assert quarantined[0]["source"] == "poison:venom"
        assert summary["tenants"]["calm"]["restarts"] == 0
        assert summary["tenants"]["calm"]["lines"] == 30

    def test_process_isolation_rejects_tenant_budgets(self, tmp_path):
        with pytest.raises(ValidationError):
            IngestionService(
                str(tmp_path), _factory(),
                isolation="process", budget=object(), ladder=object(),
            )
        with pytest.raises(ValidationError):
            IngestionService(str(tmp_path), _factory(), isolation="rocket")
        with pytest.raises(ValidationError):
            IngestionService(
                str(tmp_path), _factory(), worker_kwargs=dict(watchdog=1.0)
            )


class TestSupervisorStatus:
    def test_status_line_from_registry(self, tmp_path):
        telemetry = Telemetry.create(trace_id="t")
        service = IngestionService(
            str(tmp_path), _factory(), parser_name="Drain",
            telemetry=telemetry, isolation="process",
            worker_kwargs=dict(checkpoint_every=8, **FAST),
        )
        replay_lines(
            service,
            [f"alpha\tconn from host{i} port {i}" for i in range(10)],
        )
        status = supervisor_status(service)
        assert "alpha" in status["tenants"]
        assert status["line"].startswith("supervisor: alpha ")
        assert "r=0" in status["line"]
        service.drain()
        status = supervisor_status(service)
        assert status["tenants"]["alpha"]["state"] == STATE_DRAINED

    def test_status_works_in_thread_mode(self, tmp_path):
        service = IngestionService(
            str(tmp_path), _factory(), parser_name="Drain"
        )
        replay_lines(service, ["alpha\tconn from host1 port 1"])
        status = supervisor_status(service)
        assert status["tenants"]["alpha"]["state"] == "alive"
        service.drain()
