"""Unit and integration tests for the multi-tenant ingestion service.

Covers the per-tenant failure domain (:class:`TenantShard`), the
admission layer (token buckets + global budget valve), the tenant
router and TCP front end, graceful-shutdown signal plumbing, the
replay/at-least-once resume contract, and the streaming engine's
single-writer concurrency tripwire (including ``reconfigure`` racing
the overflow paths, the degradation ladder's step-down hook).

Connection-fault injection and the noisy-neighbor isolation
certification live in ``test_service_faults.py``.
"""

import json
import os
import signal
import threading

import pytest

from repro.cli import main
from repro.common.errors import (
    BudgetExceededError,
    ConcurrencyError,
    ValidationError,
)
from repro.common.types import LogRecord
from repro.degradation import BudgetMonitor, ResourceBudget
from repro.parsers import make_parser
from repro.service import (
    AdmissionController,
    IngestionService,
    LineServer,
    ShutdownRequested,
    TenantShard,
    TokenBucket,
    graceful_signals,
    replay_lines,
)
from repro.service.admission import CAUSE_RATE, CAUSE_SAMPLED, CAUSE_SHED
from repro.service.shard import (
    ACCEPTED,
    BREAKER,
    QUARANTINED,
    REASON_BREAKER,
    REASON_BUDGET,
    REASON_CRASH,
    REPLAYED,
)
from repro.service.signals import ShutdownGuard
from repro.streaming import StreamingParser


def _record(content: str) -> LogRecord:
    return LogRecord(content=content)


def _lines(tenant: str, n: int, start: int = 0) -> list[str]:
    return [
        f"{tenant}\tConnection from 10.0.0.{(start + i) % 9} "
        f"port {4000 + start + i} established"
        for i in range(n)
    ]


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class CrashingParser:
    """A parser whose ``parse`` always explodes (tenant-fault stand-in)."""

    name = "Crashing"

    def parse(self, records):
        raise RuntimeError("synthetic parser crash")


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        for _ in range(3):
            bucket.try_take()
        clock.now = 1.0  # +2 tokens
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.now = 100.0
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]

    def test_validation(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1, burst=0)


class TestAdmissionController:
    def test_rate_cause(self):
        clock = FakeClock()
        controller = AdmissionController(rate=1.0, burst=1.0, clock=clock)
        assert controller.admit("a") == (True, None)
        assert controller.admit("a") == (False, CAUSE_RATE)
        # A different tenant has its own bucket.
        assert controller.admit("b") == (True, None)

    def test_soft_breach_samples_noisiest_only(self):
        monitor = BudgetMonitor(
            ResourceBudget.of(queue_depth=10), queue_probe=lambda: 7.0
        )
        controller = AdmissionController(
            monitor=monitor, check_every=64, sample_keep=2
        )
        # 64 admissions make "noisy" the undisputed window leader and
        # trigger the regrade that grades the breach as soft.
        for _ in range(64):
            controller.admit("noisy")
        # Measured inside one regrade window (admissions 65..84): the
        # cached pressure state cannot flip mid-measurement.
        noisy = [controller.admit("noisy")[1] for _ in range(10)]
        quiet = [controller.admit("quiet")[1] for _ in range(10)]
        assert CAUSE_SAMPLED in noisy
        # Sampling admits 1 in sample_keep, never zero.
        assert noisy.count(None) == 5
        assert quiet == [None] * 10

    def test_hard_breach_sheds_noisiest_only(self):
        monitor = BudgetMonitor(
            ResourceBudget.of(queue_depth=10), queue_probe=lambda: 25.0
        )
        controller = AdmissionController(monitor=monitor, check_every=64)
        for _ in range(64):
            controller.admit("noisy")
        outcomes = [controller.admit("noisy")[1] for _ in range(10)]
        assert outcomes == [CAUSE_SHED] * 10
        assert controller.admit("quiet") == (True, None)

    def test_pressure_events_audit_trail(self):
        depth = {"value": 0.0}
        monitor = BudgetMonitor(
            ResourceBudget.of(queue_depth=10),
            queue_probe=lambda: depth["value"],
        )
        controller = AdmissionController(monitor=monitor, check_every=1)
        controller.admit("a")
        assert controller.pressure_events == []
        depth["value"] = 25.0
        controller.admit("a")
        depth["value"] = 0.0
        controller.admit("a")
        levels = [event["level"] for event in controller.pressure_events]
        assert levels == ["hard", None]

    def test_decay_forgives_quieted_tenant(self):
        monitor = BudgetMonitor(
            ResourceBudget.of(queue_depth=10), queue_probe=lambda: 25.0
        )
        controller = AdmissionController(
            monitor=monitor, check_every=1, decay=0.5
        )
        for _ in range(6):
            controller.admit("was-noisy")
        # was-noisy goes silent; steady keeps talking and the decayed
        # window hands it the "noisiest" crown within a few checks.
        for _ in range(12):
            controller.admit("steady")
        assert controller.admit("was-noisy") == (True, None)

    def test_validation(self):
        with pytest.raises(ValidationError):
            AdmissionController(check_every=0)
        with pytest.raises(ValidationError):
            AdmissionController(sample_keep=1)
        with pytest.raises(ValidationError):
            AdmissionController(decay=1.0)


class TestSignals:
    def test_exit_code_convention(self):
        assert ShutdownRequested(signal.SIGINT).exit_code == 130
        assert ShutdownRequested(signal.SIGTERM).exit_code == 143
        assert "SIGTERM" in str(ShutdownRequested(signal.SIGTERM))

    def test_guard_check_raises_only_when_requested(self):
        guard = ShutdownGuard()
        guard.check()  # no-op
        guard.signum = signal.SIGTERM
        assert guard.requested
        with pytest.raises(ShutdownRequested) as excinfo:
            guard.check()
        assert excinfo.value.exit_code == 143

    def test_cooperative_mode_notes_signal_without_raising(self):
        with graceful_signals() as guard:
            os.kill(os.getpid(), signal.SIGINT)
            # The handler ran (no KeyboardInterrupt, no raise) and only
            # flagged the guard.
            assert guard.signum == signal.SIGINT

    def test_immediate_mode_raises_from_handler(self):
        with pytest.raises(ShutdownRequested):
            with graceful_signals(immediate=True):
                os.kill(os.getpid(), signal.SIGTERM)

    def test_handlers_restored_after_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with graceful_signals():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before


class TestTenantShard:
    def factory(self):
        return make_parser("Drain")

    def test_accept_and_drain_artifacts(self, tmp_path):
        shard = TenantShard("alpha", str(tmp_path), self.factory)
        for i in range(30):
            outcome = shard.submit(
                _record(f"Connection from 10.0.0.{i % 5} established")
            )
            assert outcome == ACCEPTED
        summary = shard.drain()
        assert summary["lines"] == 30
        assert summary["accepted"] == 30
        assert not summary["breaker_open"]
        base = tmp_path / "alpha"
        assert (base / "out.events").exists()
        assert (base / "out.structured").exists()
        assert (base / "out.checkpoint.json").exists()
        assert (base / "out.manifest.json").exists()
        # Idempotent: a second drain returns the same summary object.
        assert shard.drain() is summary

    def test_manifest_keys_are_relative(self, tmp_path):
        shard = TenantShard("alpha", str(tmp_path), self.factory)
        shard.submit(_record("Connection established"))
        shard.drain()
        manifest = json.loads(
            (tmp_path / "alpha" / "out.manifest.json").read_text()
        )
        for key in manifest["artifacts"]:
            assert not os.path.isabs(key)
            assert "/" not in key

    def test_screen_reject_lands_in_tenant_quarantine(self, tmp_path):
        shard = TenantShard("alpha", str(tmp_path), self.factory)
        assert shard.submit(_record("clean line")) == ACCEPTED
        assert shard.submit(_record("bad \x00 bytes")) == "rejected"
        assert len(shard.quarantine) == 1
        assert not shard.breaker_open

    def test_crash_flood_trips_breaker(self, tmp_path):
        shard = TenantShard(
            "alpha",
            str(tmp_path),
            CrashingParser,
            flush_policy="delta",
            flush_size=1,  # every miss flushes (and crashes) immediately
            breaker_threshold=3,
        )
        outcomes = [shard.submit(_record(f"boom {i}")) for i in range(5)]
        assert outcomes == [
            QUARANTINED, QUARANTINED, QUARANTINED, BREAKER, BREAKER,
        ]
        assert shard.breaker_open
        summary = shard.drain()
        assert summary["breaker_open"]
        assert summary["quarantined"] == 5
        reasons = [
            payload["reason"]
            for payload in _framed_payloads(
                tmp_path / "alpha" / "out.quarantine.jsonl"
            )
        ]
        assert reasons.count(REASON_CRASH) == 3
        assert reasons.count(REASON_BREAKER) == 2

    def test_budget_exhaustion_trips_immediately(self, tmp_path):
        shard = TenantShard("alpha", str(tmp_path), self.factory)

        class ExhaustedSession:
            def feed(self, record):
                raise BudgetExceededError("memory budget exhausted")

        shard._session = ExhaustedSession()
        assert shard.submit(_record("x")) == BREAKER
        assert shard.breaker_open
        assert REASON_BUDGET in shard.breaker_reason or "budget" in (
            shard.breaker_reason or ""
        )

    def test_budgeted_requires_ladder(self, tmp_path):
        with pytest.raises(ValidationError):
            TenantShard(
                "alpha",
                str(tmp_path),
                self.factory,
                budget=ResourceBudget.of(memory_mb=512),
            )

    def test_replay_resume_no_dup_no_loss(self, tmp_path):
        first = TenantShard("alpha", str(tmp_path), self.factory)
        lines = [f"Connection from 10.0.0.{i % 4} closed" for i in range(12)]
        for line in lines:
            first.submit(_record(line))
        first.drain()

        resumed = TenantShard("alpha", str(tmp_path), self.factory)
        assert resumed.resumed
        # The at-least-once source replays from the beginning: the
        # already-consumed prefix is skipped, the tail is accepted.
        outcomes = [resumed.submit(_record(line)) for line in lines]
        assert outcomes == [REPLAYED] * 12
        extra = [f"Verification succeeded for blk_{i}" for i in range(5)]
        assert [resumed.submit(_record(l)) for l in extra] == [ACCEPTED] * 5
        summary = resumed.drain()
        assert summary["seen"] == 17
        assert summary["lines"] == 17
        events = (tmp_path / "alpha" / "out.structured").read_text()
        assert len(events.splitlines()) == 17

    def test_budgeted_shard_refuses_resume(self, tmp_path):
        shard = TenantShard("alpha", str(tmp_path), self.factory)
        shard.submit(_record("x"))
        shard.drain()
        from repro.degradation import default_ladder, DegradationLadder

        with pytest.raises(ValidationError):
            TenantShard(
                "alpha",
                str(tmp_path),
                self.factory,
                budget=ResourceBudget.of(memory_mb=512),
                ladder=DegradationLadder(default_ladder()),
            )


def _framed_payloads(path):
    """Decode a length+CRC framed JSONL quarantine file to payload dicts."""
    from repro.resilience.durability import read_jsonl_payloads

    return read_jsonl_payloads(str(path))


class TestIngestionService:
    def factory(self):
        return make_parser("Drain")

    def test_routing_and_protocol_rejects(self, tmp_path):
        service = IngestionService(str(tmp_path), self.factory)
        assert service.submit_line("alpha\tConnection established") == ACCEPTED
        assert service.submit_line("no tab in this line") == "protocol"
        assert service.submit_line("bad/key\tcontent") == "protocol"
        assert service.submit_line(("x" * 65) + "\tcontent") == "protocol"
        assert service.submitted == 4
        assert service.tenants() == ["alpha"]
        summary = service.drain()
        assert summary["protocol_rejects"] == 3
        assert (tmp_path / "service.quarantine.jsonl").exists()

    def test_replay_lines_counts_outcomes(self, tmp_path):
        service = IngestionService(str(tmp_path), self.factory)
        outcomes = replay_lines(
            service, _lines("alpha", 10) + _lines("beta", 10) + ["garbage"]
        )
        assert outcomes == {"accepted": 20, "protocol": 1}
        summary = service.drain()
        assert set(summary["tenants"]) == {"alpha", "beta"}

    def test_replay_guard_stops_at_line_boundary(self, tmp_path):
        service = IngestionService(str(tmp_path), self.factory)
        guard = ShutdownGuard()

        def lines():
            yield "alpha\tfirst line"
            yield "alpha\tsecond line"
            guard.signum = signal.SIGTERM
            yield "alpha\tchecked before submit, never fed"
            yield "alpha\tnever reached"

        with pytest.raises(ShutdownRequested):
            replay_lines(service, lines(), guard=guard)
        # Every shard is still coherent and drainable.
        summary = service.drain()
        assert summary["tenants"]["alpha"]["lines"] == 2

    def test_adopt_existing_resumes_all_tenants(self, tmp_path):
        first = IngestionService(str(tmp_path), self.factory)
        replay_lines(first, _lines("alpha", 8) + _lines("beta", 6))
        first.drain()

        second = IngestionService(str(tmp_path), self.factory)
        assert second.adopt_existing() == ["alpha", "beta"]
        # beta receives nothing this life but is still finalized.
        replay_lines(second, _lines("alpha", 8) + _lines("alpha", 4, start=8))
        summary = second.drain()
        assert summary["tenants"]["alpha"]["lines"] == 12
        assert summary["tenants"]["beta"]["lines"] == 6

    def test_admission_wired_through_submit(self, tmp_path):
        clock = FakeClock()
        service = IngestionService(
            str(tmp_path),
            self.factory,
            admission=AdmissionController(rate=1.0, burst=2.0, clock=clock),
        )
        outcomes = [
            service.submit_line(f"alpha\tline {i}") for i in range(4)
        ]
        assert outcomes == [ACCEPTED, ACCEPTED, "rate", "rate"]

    def test_checkpoint_all(self, tmp_path):
        service = IngestionService(str(tmp_path), self.factory)
        replay_lines(service, _lines("alpha", 5) + _lines("beta", 5))
        service.checkpoint_all()
        assert (tmp_path / "alpha" / "out.checkpoint.json").exists()
        assert (tmp_path / "beta" / "out.checkpoint.json").exists()

    def test_crashing_tenant_never_escapes_submit(self, tmp_path):
        service = IngestionService(
            str(tmp_path),
            CrashingParser,
            flush_policy="delta",
            flush_size=1,
            breaker_threshold=2,
        )
        for i in range(4):
            outcome = service.submit_line(f"alpha\tboom {i}")
            assert outcome in (QUARANTINED, BREAKER)
        summary = service.drain()
        assert summary["tenants"]["alpha"]["breaker_open"]


class TestLineServer:
    def factory(self):
        return make_parser("Drain")

    def test_tcp_round_trip_with_partial_line(self, tmp_path):
        import socket as socketlib

        service = IngestionService(str(tmp_path), self.factory)
        with LineServer(service) as server:
            conn = socketlib.create_connection(
                (server.host, server.port), timeout=5
            )
            payload = "".join(line + "\n" for line in _lines("alpha", 20))
            conn.sendall(payload.encode())
            conn.sendall(b"beta\tdangling fragment without newline")
            conn.close()
            deadline = 100
            while service.submitted < 20 and deadline:
                deadline -= 1
                import time

                time.sleep(0.05)
        summary = service.drain()
        assert summary["tenants"]["alpha"]["lines"] == 20
        # The dangling fragment became a protocol quarantine record,
        # not a tenant record and not a crash.
        assert summary["protocol_rejects"] == 1

    def test_multibyte_utf8_split_across_recv_chunks(self, tmp_path):
        """A codepoint torn across two TCP segments parses cleanly.

        The server splits the *byte* buffer on newlines and decodes
        whole lines only, so a chunk boundary landing mid-codepoint
        must never mojibake or quarantine the line.
        """
        import socket as socketlib
        import time

        service = IngestionService(str(tmp_path), self.factory)
        line = (
            "alpha\tConnection from host-καλημέρα "
            "port 9999 established\n"
        ).encode("utf-8")
        # Split inside the two-byte κ (0xCE 0xBA).
        cut = line.index("κ".encode("utf-8")) + 1
        with LineServer(service) as server:
            conn = socketlib.create_connection(
                (server.host, server.port), timeout=5
            )
            conn.sendall(line[:cut])
            # Let the first fragment land as its own recv chunk.
            time.sleep(0.3)
            conn.sendall(line[cut:])
            conn.close()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and service.submitted < 1:
                time.sleep(0.05)
        summary = service.drain()
        assert summary["tenants"]["alpha"]["lines"] == 1
        assert summary["protocol_rejects"] == 0
        events = (tmp_path / "alpha" / "out.events").read_text(
            encoding="utf-8"
        )
        assert "καλημέρα" in events

    def test_mid_line_disconnect_quarantined_with_tcp_origin(
        self, tmp_path
    ):
        """The dangling bytes of a dead connection carry provenance:
        the quarantine record's source is the ``tcp:host:port`` peer,
        so an operator can tell which client keeps tearing lines."""
        import socket as socketlib
        import time

        from repro.resilience import read_jsonl_payloads

        service = IngestionService(str(tmp_path), self.factory)
        with LineServer(service) as server:
            conn = socketlib.create_connection(
                (server.host, server.port), timeout=5
            )
            conn.sendall(_lines("alpha", 1)[0].encode() + b"\n")
            conn.sendall("beta\ttorn at byte ¢".encode("utf-8")[:-1])
            conn.close()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and service.submitted < 1:
                time.sleep(0.05)
        summary = service.drain()
        assert summary["protocol_rejects"] == 1
        payloads = read_jsonl_payloads(
            str(tmp_path / "service.quarantine.jsonl")
        )
        assert len(payloads) == 1
        assert payloads[0]["reason"] == "protocol"
        assert payloads[0]["source"].startswith("tcp:")
        assert "torn at byte" in payloads[0]["preview"]

    def test_reset_outcomes_split_by_ingestion(self, tmp_path):
        """A peer resetting before any complete line counts as
        ``reset``; one resetting after data was routed counts as
        ``reset_after_data`` — the two must not conflate."""
        import socket as socketlib
        import struct
        import time

        from repro.observability import Telemetry

        telemetry = Telemetry.create()
        service = IngestionService(
            str(tmp_path), self.factory, telemetry=telemetry
        )

        def rst_close(conn) -> None:
            conn.setsockopt(
                socketlib.SOL_SOCKET,
                socketlib.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            conn.close()

        def outcome_count(outcome: str) -> float:
            return telemetry.metrics.value(
                "repro_service_connections_total", outcome=outcome
            )

        def await_outcome(outcome: str) -> None:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if outcome_count(outcome) >= 1:
                    return
                time.sleep(0.05)
            raise AssertionError(f"no {outcome} connection counted")

        with LineServer(service) as server:
            # Reset with zero lines routed.
            conn = socketlib.create_connection(
                (server.host, server.port), timeout=5
            )
            rst_close(conn)
            await_outcome("reset")

            # Reset after a complete line was ingested.
            conn = socketlib.create_connection(
                (server.host, server.port), timeout=5
            )
            conn.sendall(_lines("alpha", 1)[0].encode() + b"\n")
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and service.submitted < 1:
                time.sleep(0.05)
            rst_close(conn)
            await_outcome("reset_after_data")
        assert outcome_count("reset") == 1
        assert outcome_count("reset_after_data") == 1
        service.drain()

    def test_cli_serve_replay_mode(self, tmp_path, capsys):
        replay = tmp_path / "replay.log"
        replay.write_text(
            "".join(
                line + "\n"
                for line in _lines("alpha", 15) + _lines("beta", 15)
            )
        )
        data = tmp_path / "data"
        code = main(
            [
                "serve", "Drain", str(data),
                "--replay", str(replay),
                "--manifest-out", str(tmp_path / "run.manifest.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accepted=30" in out
        assert (data / "alpha" / "out.manifest.json").exists()
        assert (data / "beta" / "out.manifest.json").exists()
        assert main(
            ["verify-run", str(data / "alpha" / "out.manifest.json")]
        ) == 0

    def test_cli_serve_rejects_drain_after_with_replay(self, tmp_path):
        code = main(
            [
                "serve", "Drain", str(tmp_path / "d"),
                "--replay", "nope.log", "--drain-after", "5",
            ]
        )
        assert code == 2


class TestSingleWriterTripwire:
    """The engine's cross-thread entry detector (documented contract)."""

    def test_cross_thread_entry_raises_deterministically(self):
        in_flush = threading.Event()
        release = threading.Event()

        class BlockingParser:
            name = "Blocking"

            def __init__(self):
                self._inner = make_parser("Passthrough")

            def parse(self, records):
                in_flush.set()
                release.wait(timeout=10)
                return self._inner.parse(records)

        engine = StreamingParser(
            BlockingParser, flush_policy="delta", flush_size=2
        )
        errors = []

        def feeder():
            engine.feed(_record("miss one"))
            engine.feed(_record("miss two"))  # triggers the blocking flush

        thread = threading.Thread(target=feeder)
        thread.start()
        try:
            assert in_flush.wait(timeout=10)
            with pytest.raises(ConcurrencyError):
                engine.feed(_record("from the wrong thread"))
        finally:
            release.set()
            thread.join(timeout=10)
        assert not errors
        # The owning thread is gone: this thread may use the engine now.
        engine.feed(_record("miss one"))

    def test_same_thread_reentrancy_is_fine(self):
        engine = StreamingParser(
            lambda: make_parser("Drain"), flush_policy="delta", flush_size=4
        )
        # feed -> flush -> finalize all nest on one thread without
        # tripping the guard.
        result = engine.parse(
            [_record(f"Connection from 10.0.0.{i}") for i in range(16)]
        )
        assert len(result.records) == 16

    def test_shard_lock_is_the_sanctioned_serialization(self, tmp_path):
        """Concurrent stress: many threads, one shard, exact accounting."""
        shard = TenantShard(
            "alpha",
            str(tmp_path),
            lambda: make_parser("Drain"),
            flush_size=32,
        )
        n_threads, per_thread = 6, 150
        failures = []

        def worker(worker_id: int):
            try:
                for i in range(per_thread):
                    outcome = shard.submit(
                        _record(
                            f"Connection from 10.0.{worker_id}.{i % 7} "
                            "established"
                        )
                    )
                    assert outcome == ACCEPTED
            except Exception as error:  # noqa: BLE001 - collected below
                failures.append(error)

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert failures == []
        assert shard.seen == n_threads * per_thread
        summary = shard.drain()
        assert summary["lines"] == n_threads * per_thread


class TestReconfigureRacingOverflow:
    """``reconfigure`` while the pending buffer is mid-overflow.

    The degradation ladder calls ``reconfigure`` at step-down time
    with records still buffered; every overflow mode must stay
    coherent through the swap.
    """

    def _miss(self, i: int) -> LogRecord:
        return _record(f"unique miss token-{i} payload-{i * 37}")

    def test_block_mode_reconfigure_with_pending(self):
        engine = StreamingParser(
            lambda: make_parser("Drain"),
            flush_policy="delta",
            flush_size=100,
            max_pending=4,
            overflow="block",
        )
        for i in range(3):
            engine.feed(self._miss(i))
        assert engine.pending_count == 3
        applied = engine.reconfigure(
            factory=lambda: make_parser("SLCT"), flush_size=50
        )
        assert "flush_parser" in applied
        # Pending survives the swap; overflow still blocks (flushes).
        for i in range(3, 10):
            assert engine.feed(self._miss(i)) >= 0
        engine.finalize()
        assert len(engine.result().records) == 10

    def test_shed_mode_counts_survive_step_down(self):
        engine = StreamingParser(
            lambda: make_parser("Drain"),
            flush_policy="delta",
            flush_size=100,
            max_pending=2,
            overflow="shed",
        )
        outcomes = [engine.feed(self._miss(i)) for i in range(6)]
        shed_before = outcomes.count(-1)
        assert shed_before == 4  # buffer holds 2, the rest shed
        # Step down mid-overflow: cheaper parser, tighter buffer,
        # switch to sampling.
        engine.reconfigure(
            factory=lambda: make_parser("Passthrough"),
            overflow="sample",
        )
        after = [engine.feed(self._miss(i)) for i in range(6, 12)]
        # Sampling admits every overflow_sample_keep-th overflowing
        # miss instead of shedding all of them.
        assert after.count(-1) < 6
        assert 0 < len([o for o in after if o >= 0])
        engine.finalize()
        # Everything the engine admitted is in the result; shed lines
        # are gone by policy, not by corruption.
        admitted = len([o for o in outcomes + after if o >= 0])
        assert len(engine.result().records) == admitted

    def test_sample_to_block_reconfigure_flushes_backlog(self):
        engine = StreamingParser(
            lambda: make_parser("Drain"),
            flush_policy="delta",
            flush_size=100,
            max_pending=3,
            overflow="sample",
        )
        for i in range(8):
            engine.feed(self._miss(i))
        assert engine.pending_count >= 3
        engine.reconfigure(overflow="block", max_pending=2)
        # block mode now flushes synchronously instead of dropping.
        for i in range(8, 14):
            assert engine.feed(self._miss(i)) >= 0
        engine.finalize()

    def test_ladder_step_down_shape(self):
        """The exact call shape DegradationLadder uses at step-down."""
        engine = StreamingParser(
            lambda: make_parser("Drain"),
            flush_policy="delta",
            flush_size=64,
            cache_capacity=256,
            max_pending=8,
            overflow="block",
        )
        for i in range(5):
            engine.feed(self._miss(i))
        applied = engine.reconfigure(
            factory=lambda: make_parser("SLCT"),
            flush_size=32,
            cache_capacity=128,
            max_pending=4,
            overflow="shed",
        )
        assert set(applied) == {
            "flush_parser", "flush_size", "cache_capacity",
            "max_pending", "overflow",
        }
        # The 5 pending misses exceed the new max_pending=4: the next
        # feeds shed instead of blocking, and nothing already buffered
        # was lost.
        outcomes = [engine.feed(self._miss(i)) for i in range(5, 9)]
        assert outcomes == [-1, -1, -1, -1]
        engine.finalize()
        assert len(engine.result().records) == 5
