"""Drain parser: unit behavior and property-based tree invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ParserConfigurationError
from repro.common.tokenize import WILDCARD
from repro.parsers import DrainParser, DrainTree, make_parser

token = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=5,
)
token_list = st.lists(token, min_size=0, max_size=8)
token_corpus = st.lists(token_list, min_size=0, max_size=30)


class TestConfiguration:
    def test_registry_constructs_drain(self):
        assert make_parser("drain").name == "Drain"

    def test_forwards_params(self):
        parser = make_parser("Drain", depth=5, sim_threshold=0.6)
        assert parser.depth == 5
        assert parser.sim_threshold == 0.6

    @pytest.mark.parametrize(
        "params",
        [
            {"depth": 2},
            {"sim_threshold": 0.0},
            {"sim_threshold": 1.0},
            {"sim_threshold": -0.5},
            {"max_children": 0},
        ],
    )
    def test_bad_config_rejected_at_construction(self, params):
        with pytest.raises(ParserConfigurationError):
            DrainParser(**params)
        with pytest.raises(ParserConfigurationError):
            DrainTree(**params)


class TestClustering:
    def test_parameter_positions_generalized(self):
        result = DrainParser().parse_contents(
            [
                "send block 1 to 10.0.0.1",
                "send block 2 to 10.0.0.2",
                "send block 3 to 10.0.0.9",
            ]
        )
        assert len(result.events) == 1
        assert result.events[0].template == "send block * to *"

    def test_distinct_events_kept_apart(self):
        result = DrainParser().parse_contents(
            ["open session alpha", "close session alpha", "open session beta"]
        )
        assert result.assignments[0] == result.assignments[2]
        assert result.assignments[0] != result.assignments[1]

    def test_lengths_never_merge(self):
        # The length level of the tree partitions before any similarity
        # comparison, as in the paper.
        result = DrainParser(sim_threshold=0.01).parse_contents(
            ["alpha beta gamma", "alpha beta gamma delta"]
        )
        assert result.assignments[0] != result.assignments[1]

    def test_never_emits_outliers(self):
        from repro.common.types import ParseResult

        result = DrainParser().parse_contents(
            ["x", "completely different line", "y z"]
        )
        assert ParseResult.OUTLIER_EVENT_ID not in result.assignments

    def test_max_children_overflow_shares_wildcard_branch(self):
        tree = DrainTree(max_children=1, sim_threshold=0.9)
        # Three distinct leading tokens: only the first gets its own
        # branch, the rest funnel through the wildcard branch — and the
        # similarity gate still keeps them in separate groups.
        labels = [
            tree.feed(tokens)
            for tokens in (
                ["alpha", "x", "y"],
                ["beta", "x", "y"],
                ["gamma", "x", "y"],
                ["beta", "x", "y"],
            )
        ]
        assert labels[1] == labels[3]
        assert len({labels[0], labels[1], labels[2]}) == 3

    def test_empty_message_clusters_with_itself(self):
        tree = DrainTree()
        assert tree.feed([]) == tree.feed([])


class TestTreeInvariants:
    @given(token_corpus)
    @settings(max_examples=50, deadline=None)
    def test_depth_bound_respected(self, corpus):
        tree = DrainTree(depth=4)
        for tokens in corpus:
            tree.feed(tokens)
        assert all(level <= tree.depth for level in tree.node_depths())

    @given(token_corpus, st.integers(min_value=3, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_no_template_loss(self, corpus, depth):
        # Every fed line lands in exactly one live group; group ids are
        # dense, stable, and each has a template of the line's length.
        tree = DrainTree(depth=depth)
        for tokens in corpus:
            label = tree.feed(tokens)
            templates = tree.templates()
            assert 0 <= label < len(templates)
            assert len(templates[label]) == len(tokens)
        leaf_ids = [
            group_id
            for leaf in tree.leaf_groups()
            for group_id in leaf
        ]
        assert sorted(leaf_ids) == list(range(tree.n_groups))

    @given(token_corpus)
    @settings(max_examples=50, deadline=None)
    def test_monotone_cluster_count(self, corpus):
        tree = DrainTree()
        previous = 0
        for tokens in corpus:
            tree.feed(tokens)
            assert previous <= tree.n_groups <= previous + 1
            previous = tree.n_groups

    @given(token_corpus)
    @settings(max_examples=50, deadline=None)
    def test_batch_parse_matches_incremental_feed(self, corpus):
        parser = DrainParser()
        tree = parser.tree()
        fed = [tree.feed(list(tokens)) for tokens in corpus]
        clustering = parser._cluster([list(tokens) for tokens in corpus])
        assert clustering.labels == fed
        assert clustering.templates == tree.templates()

    @given(token_corpus)
    @settings(max_examples=30, deadline=None)
    def test_templates_cover_members(self, corpus):
        # A group's template matches every member positionally: equal
        # token or wildcard, never a third thing.
        tree = DrainTree()
        labels = [tree.feed(tokens) for tokens in corpus]
        templates = tree.templates()
        for tokens, label in zip(corpus, labels):
            template = templates[label]
            assert len(template) == len(tokens)
            assert all(
                expected == actual or expected == WILDCARD
                for expected, actual in zip(template, tokens)
            )
