"""Round-trip tests for the real-format (headered) log files."""

import pytest

from repro.datasets import generate_dataset, get_dataset_spec
from repro.datasets.loader import read_real_format, write_real_format
from repro.evaluation import f_measure
from repro.parsers import Iplom


@pytest.mark.parametrize(
    "system", ["BGL", "HPC", "HDFS", "Zookeeper", "Proxifier"]
)
class TestRealFormatRoundTrip:
    def test_content_survives(self, system, tmp_path):
        dataset = generate_dataset(get_dataset_spec(system), 80, seed=1)
        path = str(tmp_path / "real.log")
        write_real_format(dataset.records, path, system, seed=1)
        loaded = read_real_format(path, system)
        assert [r.content for r in loaded] == dataset.contents()

    def test_file_looks_like_a_real_log(self, system, tmp_path):
        dataset = generate_dataset(get_dataset_spec(system), 20, seed=2)
        path = str(tmp_path / "real.log")
        write_real_format(dataset.records, path, system, seed=2)
        first_line = open(path).readline()
        # The raw line must be longer than the bare content (headers).
        assert len(first_line.strip()) > len(dataset.records[0].content)


class TestParseFromRealFormat:
    def test_end_to_end_hdfs(self, tmp_path):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 600, seed=3)
        path = str(tmp_path / "hdfs.log")
        write_real_format(dataset.records, path, "HDFS", seed=3)
        loaded = read_real_format(path, "HDFS")
        result = Iplom().parse(loaded)
        score = f_measure(result.assignments, dataset.truth_assignments)
        assert score > 0.9

    def test_missing_file(self, tmp_path):
        from repro.common.errors import DatasetError

        with pytest.raises(DatasetError):
            read_real_format(str(tmp_path / "none.log"), "HDFS")
