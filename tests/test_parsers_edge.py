"""Cross-parser edge cases and failure injection.

Every parser must satisfy the same contract under adversarial input:
empty files, single lines, all-identical corpora, all-unique corpora,
single-token messages, very long messages, and mixed garbage.
"""

import pytest

from repro.common.types import ParseResult, records_from_contents
from repro.parsers import Iplom, Lke, LogSig, Slct

ALL_PARSERS = [
    pytest.param(lambda: Slct(support=2), id="SLCT"),
    pytest.param(lambda: Iplom(), id="IPLoM"),
    pytest.param(lambda: Lke(seed=1), id="LKE"),
    pytest.param(lambda: LogSig(groups=3, seed=1), id="LogSig"),
]


@pytest.mark.parametrize("factory", ALL_PARSERS)
class TestContractUnderEdgeCases:
    def test_empty_input(self, factory):
        result = factory().parse([])
        assert len(result) == 0
        assert result.events == []

    def test_single_line(self, factory):
        result = factory().parse_contents(["just one log line here"])
        assert len(result.assignments) == 1

    def test_all_identical(self, factory):
        result = factory().parse_contents(["same line again"] * 25)
        assert len(set(result.assignments)) == 1

    def test_single_token_messages(self, factory):
        result = factory().parse_contents(["up"] * 5 + ["down"] * 5)
        assert len(result.assignments) == 10

    def test_long_messages(self, factory):
        long_line = " ".join(f"tok{i}" for i in range(120))
        result = factory().parse_contents([long_line] * 4)
        assert len(set(result.assignments)) == 1

    def test_assignments_align_with_records(self, factory):
        contents = [f"evt alpha {i}" for i in range(10)] + [
            f"evt beta {i}" for i in range(10)
        ]
        result = factory().parse_contents(contents)
        assert len(result.assignments) == len(result.records) == 20

    def test_every_non_outlier_has_template(self, factory):
        contents = [f"msg kind{i % 2} value {i}" for i in range(16)]
        result = factory().parse_contents(contents)
        for event_id in set(result.assignments):
            if event_id != ParseResult.OUTLIER_EVENT_ID:
                assert result.template_of(event_id)

    def test_whitespace_heavy_lines(self, factory):
        result = factory().parse_contents(
            ["  spaced   out   line  "] * 4 + ["another kind entirely ok"] * 4
        )
        assert len(result.assignments) == 8

    def test_unicode_content(self, factory):
        result = factory().parse_contents(
            ["naïve café message №1", "naïve café message №2"] * 3
        )
        assert len(result.assignments) == 6


class TestMixedGarbage:
    GARBAGE = [
        "",
        "x",
        "a b c d e f g h i j k l m",
        "{json: looking, thing: 1}",
        "tab\tseparated\tvalues",  # tabs collapse to whitespace tokens
        "1234567890",
        "=== section header ===",
    ]

    def test_slct_handles_garbage(self):
        result = Slct(support=2).parse_contents(self.GARBAGE * 3)
        assert len(result.assignments) == len(self.GARBAGE) * 3

    def test_iplom_handles_garbage(self):
        result = Iplom().parse_contents(self.GARBAGE * 3)
        assert len(result.assignments) == len(self.GARBAGE) * 3

    def test_lke_handles_garbage(self):
        result = Lke(seed=1).parse_contents(self.GARBAGE * 3)
        assert len(result.assignments) == len(self.GARBAGE) * 3

    def test_logsig_handles_garbage(self):
        result = LogSig(groups=4, seed=1).parse_contents(self.GARBAGE * 3)
        assert len(result.assignments) == len(self.GARBAGE) * 3

    def test_identical_garbage_lines_agree(self):
        for factory in (lambda: Slct(support=2), Iplom,
                        lambda: Lke(seed=1)):
            result = factory().parse_contents(self.GARBAGE * 3)
            by_content = {}
            for structured in result.structured():
                by_content.setdefault(
                    structured.record.content, set()
                ).add(structured.event_id)
            assert all(len(ids) == 1 for ids in by_content.values())


class TestRecordMetadataPreserved:
    def test_session_and_timestamp_survive_parsing(self):
        records = records_from_contents(
            ["open a", "open b"], session_ids=["s1", "s2"]
        )
        result = Iplom().parse(records)
        assert [s.record.session_id for s in result.structured()] == [
            "s1",
            "s2",
        ]
