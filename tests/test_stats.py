"""Tests for dataset statistics."""

import math

import pytest

from repro.common.errors import DatasetError
from repro.common.types import LogRecord
from repro.datasets import generate_dataset, get_dataset_spec
from repro.datasets.stats import compute_stats, describe


def _records(rows):
    return [
        LogRecord(content=content, truth_event=event)
        for event, content in rows
    ]


class TestComputeStats:
    def test_basic_counts(self):
        stats = compute_stats(
            _records(
                [("a", "one two"), ("a", "one three"), ("b", "x y z")]
            )
        )
        assert stats.n_lines == 3
        assert stats.n_events == 2
        assert stats.length_min == 2
        assert stats.length_max == 3
        assert stats.length_mean == pytest.approx(7 / 3)

    def test_entropy_uniform_two_events(self):
        stats = compute_stats(
            _records([("a", "x"), ("b", "y")])
        )
        assert stats.event_entropy == pytest.approx(1.0)

    def test_entropy_single_event_is_zero(self):
        stats = compute_stats(_records([("a", "x"), ("a", "y")]))
        assert stats.event_entropy == 0.0

    def test_top5_coverage(self):
        rows = [("a", "x")] * 9 + [("b", "y")]
        stats = compute_stats(_records(rows))
        assert stats.top5_coverage == 1.0

    def test_vocabulary_counts_positions(self):
        stats = compute_stats(
            _records([("a", "x y"), ("a", "y x")])
        )
        # (0,x),(1,y),(0,y),(1,x)
        assert stats.vocabulary_size == 4

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            compute_stats([])

    def test_unlabeled_rejected(self):
        with pytest.raises(DatasetError):
            compute_stats([LogRecord(content="x")])


class TestOnGeneratedData:
    def test_bgl_is_event_rich(self):
        bgl = compute_stats(
            generate_dataset(get_dataset_spec("BGL"), 3000, seed=1).records
        )
        hdfs = compute_stats(
            generate_dataset(get_dataset_spec("HDFS"), 3000, seed=1).records
        )
        assert bgl.n_events > hdfs.n_events
        assert bgl.event_entropy > hdfs.event_entropy

    def test_entropy_bounded_by_log_events(self):
        stats = compute_stats(
            generate_dataset(get_dataset_spec("Zookeeper"), 2000, seed=1)
            .records
        )
        assert stats.event_entropy <= math.log2(stats.n_events) + 1e-9

    def test_describe_mentions_key_numbers(self):
        stats = compute_stats(
            generate_dataset(get_dataset_spec("Proxifier"), 500, seed=1)
            .records
        )
        text = describe(stats)
        assert "500" in text
        assert "8 event types" in text
