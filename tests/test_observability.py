"""Tests for the unified telemetry layer (ISSUE 4).

Covers the metrics registry (histogram bucket boundaries, quantile
estimation, label handling, snapshot ring), the tracer (implicit
parenting, worker-boundary propagation through
:class:`~repro.parsers.parallel.ChunkedParallelParser`), the exporters
(Prometheus render/parse round-trip plus the parser's rejection
cases), the structured event timeline, and the registry-derived
summary line the CLI prints.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.common.errors import ValidationError
from repro.common.types import records_from_contents
from repro.datasets import generate_dataset, get_dataset_spec
from repro.observability import (
    EventLog,
    Histogram,
    MetricsRegistry,
    Telemetry,
    Tracer,
    export_metrics,
    load_events,
    load_jsonl_spans,
    parse_prometheus,
    render_json_snapshot,
    render_prometheus,
    summary_from_registry,
)
from repro.parsers import ChunkedParallelParser, make_parser
from repro.resilience.quarantine import QuarantineRecord
from repro.streaming import ParseSession, StreamingParser


def _slct():
    return make_parser("SLCT")


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_observation_at_bucket_edge_is_le_inclusive(self):
        hist = Histogram([1.0, 2.0, 5.0])
        for value in (1.0, 2.0, 5.0):
            hist.observe(value)
        # Exactly-at-edge observations land in the bucket they bound.
        assert hist.counts == [1, 1, 1]
        assert hist.inf_count == 0

    def test_observation_past_last_bucket_goes_to_inf(self):
        hist = Histogram([1.0, 2.0])
        hist.observe(2.0001)
        assert hist.counts == [0, 0]
        assert hist.inf_count == 1
        assert hist.cumulative()[-1] == (math.inf, 1)

    def test_cumulative_counts_are_non_decreasing(self):
        hist = Histogram([0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        cumulative = [count for _, count in hist.cumulative()]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == 5

    def test_empty_histogram_quantile_is_none(self):
        assert Histogram([1.0]).quantile(0.5) is None

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram([10.0, 20.0])
        for _ in range(10):
            hist.observe(15.0)  # all mass in the (10, 20] bucket
        q50 = hist.quantile(0.5)
        assert 10.0 < q50 <= 20.0

    def test_quantile_of_overflow_saturates_at_last_finite_bound(self):
        hist = Histogram([1.0])
        hist.observe(100.0)
        assert hist.quantile(0.99) == 1.0

    def test_quantile_rejects_out_of_range(self):
        hist = Histogram([1.0])
        hist.observe(0.5)
        with pytest.raises(ValidationError):
            hist.quantile(1.5)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValidationError):
            Histogram([2.0, 1.0])


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help")
        with pytest.raises(ValidationError):
            counter.inc(-1)

    def test_registration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        assert registry.counter("x_total", "help") is first
        with pytest.raises(ValidationError):
            registry.gauge("x_total", "help")

    def test_value_of_never_fired_child_is_zero(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "help", labelnames=("kind",))
        assert registry.value("hits_total", kind="exact") == 0.0

    def test_labeled_children_accumulate_independently(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "help", labelnames=("kind",))
        family.labels(kind="exact").inc(3)
        family.labels(kind="template").inc()
        assert registry.value("hits_total", kind="exact") == 3.0
        assert registry.value("hits_total", kind="template") == 1.0

    def test_collectors_sync_external_state_at_read_time(self):
        registry = MetricsRegistry()
        state = {"lines": 0}
        counter = registry.counter("lines_total", "help")
        registry.register_collector(lambda: counter.sync(state["lines"]))
        state["lines"] = 42
        assert registry.value("lines_total") == 42.0

    def test_snapshot_ring_is_bounded_and_ordered(self):
        clock = iter(range(100)).__next__
        registry = MetricsRegistry(clock=lambda: float(clock()), ring_capacity=3)
        gauge = registry.gauge("g", "help")
        for value in range(5):
            gauge.set(value)
            registry.snapshot()
        ring = registry.ring()
        assert len(ring) == 3
        series = registry.series("g")
        assert [value for _, value in series] == [2.0, 3.0, 4.0]


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestPrometheusExposition:
    def _populated_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("kind",)).labels(
            kind="a b\"c\\d"
        ).inc(7)
        registry.gauge("depth", "queue depth").set(3)
        hist = registry.histogram("lat_seconds", "latency", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        return registry

    def test_render_parse_round_trip(self):
        registry = self._populated_registry()
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["types"]["req_total"] == "counter"
        assert parsed["types"]["lat_seconds"] == "histogram"
        assert parsed["samples"]['req_total{kind="a b\\"c\\\\d"}'] == 7.0
        assert parsed["samples"]["depth"] == 3.0
        assert parsed["samples"]['lat_seconds_bucket{le="+Inf"}'] == 3.0
        assert parsed["samples"]["lat_seconds_count"] == 3.0

    def test_parse_rejects_sample_without_type(self):
        with pytest.raises(ValidationError):
            parse_prometheus("mystery_metric 1\n")

    def test_parse_rejects_non_numeric_value(self):
        text = "# TYPE x counter\nx abc\n"
        with pytest.raises(ValidationError):
            parse_prometheus(text)

    def test_parse_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        with pytest.raises(ValidationError):
            parse_prometheus(text)

    def test_parse_requires_inf_bucket(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="1"} 5\nh_sum 1\nh_count 5\n'
        with pytest.raises(ValidationError):
            parse_prometheus(text)

    def test_json_snapshot_carries_ring_series(self):
        registry = self._populated_registry()
        registry.snapshot()
        payload = json.loads(render_json_snapshot(registry))
        assert payload["samples"]["depth"] == 3.0
        assert len(payload["series"]) == 1

    def test_export_metrics_picks_format_by_suffix(self, tmp_path):
        registry = self._populated_registry()
        prom = tmp_path / "m.prom"
        snapshot = tmp_path / "m.json"
        export_metrics(registry, str(prom))
        export_metrics(registry, str(snapshot))
        parse_prometheus(prom.read_text())
        assert "samples" in json.loads(snapshot.read_text())


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracer:
    def test_implicit_parenting_follows_the_open_stack(self):
        tracer = Tracer(trace_id="t")
        with tracer.span("parse_run") as run:
            with tracer.span("chunk") as chunk:
                with tracer.span("parser_call") as call:
                    pass
        assert chunk.parent_id == run.span_id
        assert call.parent_id == chunk.span_id
        assert run.parent_id is None

    def test_finish_twice_is_an_error(self):
        tracer = Tracer()
        span = tracer.start("x")
        tracer.finish(span)
        with pytest.raises(ValidationError):
            tracer.finish(span)

    def test_worker_context_round_trip_preserves_parentage(self):
        parent = Tracer(trace_id="run")
        with parent.span("chunk") as chunk:
            context = parent.worker_context(prefix="w1-")
            worker = Tracer.from_worker_context(context)
            span = worker.start_root("parser_call", parser="SLCT")
            worker.finish(span)
            parent.adopt(worker.serialize())
        spans = {s.name: s for s in parent._closed_spans()}
        assert spans["parser_call"].parent_id == chunk.span_id
        assert spans["parser_call"].trace_id == "run"
        assert spans["parser_call"].span_id.startswith("w1-")

    def test_jsonl_and_chrome_exports(self, tmp_path):
        tracer = Tracer()
        with tracer.span("parse_run"):
            with tracer.span("chunk"):
                pass
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.chrome.json"
        tracer.export(str(jsonl), fmt="jsonl")
        tracer.export(str(chrome), fmt="chrome")
        spans = load_jsonl_spans(str(jsonl))
        assert [s.name for s in spans] == ["parse_run", "chunk"]
        payload = json.loads(chrome.read_text())
        assert {event["ph"] for event in payload["traceEvents"]} == {"X"}


class TestWorkerSpanPropagation:
    def test_parallel_parser_spans_cross_the_process_boundary(self):
        telemetry = Telemetry.create(trace_id="pp")
        parser = ChunkedParallelParser(
            _slct, chunk_size=40, workers=2, telemetry=telemetry
        )
        records = records_from_contents(
            [f"open file f{i}.txt by user{i % 3}" for i in range(120)]
        )
        with telemetry.tracer.span("chunk") as chunk:
            parser.parse(records)
        spans = telemetry.tracer._closed_spans()
        calls = [s for s in spans if s.name == "parser_call"]
        assert len(calls) == 3  # 120 records / 40 per chunk
        for call in calls:
            # Worker-side spans serialize back and re-parent under the
            # span that was open at dispatch time.
            assert call.parent_id == chunk.span_id
            assert call.span_id.startswith("w")
            assert call.end_us >= call.start_us
        assert telemetry.metrics.value(
            "repro_parallel_chunk_attempts_total", status="ok"
        ) == 3.0


# ---------------------------------------------------------------------------
# Event timeline
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_emit_envelopes_and_sequences(self):
        clock = iter([0.0, 1.0, 2.5]).__next__
        log = EventLog(clock=clock)
        log.emit("a", x=1)
        log.emit("b", y=2)
        kinds = [event["kind"] for event in log.events]
        assert kinds == ["a", "b"]
        assert [event["seq"] for event in log.events] == [1, 2]

    def test_reserved_keys_are_rejected(self):
        log = EventLog()
        with pytest.raises(ValidationError):
            log.emit("a", seq=9)

    def test_record_uses_the_to_record_contract(self):
        log = EventLog()
        log.record(
            QuarantineRecord(
                source="x.log",
                line_no=3,
                byte_offset=120,
                reason="oversized",
                detail="too long",
                preview="...",
            )
        )
        (event,) = log.of_kind("quarantine")
        assert event["reason"] == "oversized"
        assert event["line_no"] == 3

    def test_jsonl_persistence_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path=str(path)) as log:
            log.emit("ladder_step", to="SLCT")
            log.emit("quarantine", reason="oversized")
        events = load_events(str(path))
        assert [event["kind"] for event in events] == [
            "ladder_step",
            "quarantine",
        ]


# ---------------------------------------------------------------------------
# Registry-backed summaries (satellite 1)
# ---------------------------------------------------------------------------


class TestRegistrySummary:
    def test_summary_matches_session_counters_describe(self):
        telemetry = Telemetry.create()
        dataset = generate_dataset(get_dataset_spec("HDFS"), 600, seed=5)
        engine = StreamingParser(
            _slct, flush_size=128, cache_capacity=256, telemetry=telemetry
        )
        session = ParseSession(engine)
        session.consume(dataset.records)
        session.finalize()
        assert (
            summary_from_registry(telemetry.metrics)
            == session.counters().describe()
        )

    def test_stream_metrics_populate_expected_families(self):
        telemetry = Telemetry.create()
        dataset = generate_dataset(get_dataset_spec("HDFS"), 400, seed=5)
        engine = StreamingParser(_slct, flush_size=100, telemetry=telemetry)
        session = ParseSession(engine)
        session.consume(dataset.records)
        session.finalize()
        metrics = telemetry.metrics
        assert metrics.value("repro_stream_lines_total") == 400.0
        assert metrics.value("repro_stream_flushes_total") >= 1.0
        hits = metrics.value(
            "repro_cache_hits_total", kind="exact"
        ) + metrics.value("repro_cache_hits_total", kind="template")
        misses = metrics.value("repro_cache_misses_total")
        assert hits + misses >= 400.0
        assert metrics.value("repro_stream_flush_seconds") >= 1.0  # count
        assert metrics.value("repro_run_elapsed_seconds") > 0.0


# ---------------------------------------------------------------------------
# CLI acceptance: stream --metrics-out / --trace-out, report subcommand
# ---------------------------------------------------------------------------


class TestCliTelemetry:
    def test_stream_exports_valid_artifacts(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.prom"
        trace_path = tmp_path / "t.jsonl"
        events_path = tmp_path / "e.jsonl"
        assert main(
            [
                "stream", "SLCT", "--dataset", "HDFS", "--size", "1500",
                "--seed", "3",
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
                "--events-out", str(events_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "lines/s" in out
        assert "telemetry: wrote" in out
        # The exposition is strictly valid and carries the headline
        # counters of the run.
        parsed = parse_prometheus(metrics_path.read_text())
        assert parsed["samples"]["repro_stream_lines_total"] == 1500.0
        assert parsed["types"]["repro_stream_flush_seconds"] == "histogram"
        assert (
            parsed["samples"]['repro_cache_hits_total{kind="template"}'] > 0
        )
        # The trace nests parse_run > chunk > parser_call with
        # monotonic timestamps.
        spans = load_jsonl_spans(str(trace_path))
        by_id = {span.span_id: span for span in spans}
        runs = [s for s in spans if s.name == "parse_run"]
        chunks = [s for s in spans if s.name == "chunk"]
        calls = [s for s in spans if s.name == "parser_call"]
        assert len(runs) == 1 and chunks and calls
        for chunk in chunks:
            assert chunk.parent_id == runs[0].span_id
        for call in calls:
            assert by_id[call.parent_id].name == "chunk"
        for span in spans:
            assert span.end_us >= span.start_us
            if span.parent_id is not None:
                assert span.start_us >= by_id[span.parent_id].start_us
        # A clean run leaves a valid (empty) timeline artifact.
        assert events_path.exists()

    def test_stream_workers_trace_crosses_process_boundary(
        self, tmp_path, capsys
    ):
        trace_path = tmp_path / "t.jsonl"
        assert main(
            [
                "stream", "SLCT", "--dataset", "HDFS", "--size", "800",
                "--seed", "3", "--flush-size", "400", "--workers", "2",
                "--chunk-size", "200", "--trace-out", str(trace_path),
            ]
        ) == 0
        capsys.readouterr()
        spans = load_jsonl_spans(str(trace_path))
        worker_calls = [
            s
            for s in spans
            if s.name == "parser_call" and s.span_id.startswith("w")
        ]
        chunk_ids = {s.span_id for s in spans if s.name == "chunk"}
        assert worker_calls
        assert all(s.parent_id in chunk_ids for s in worker_calls)

    def test_budgeted_stream_emits_ladder_telemetry(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        events_path = tmp_path / "e.jsonl"
        assert main(
            [
                "stream", "IPLoM", "--dataset", "HDFS", "--size", "400",
                "--seed", "5", "--budget-queue", "20",
                "--check-every", "25",
                "--metrics-out", str(metrics_path),
                "--events-out", str(events_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "finished on rung" in out
        samples = json.loads(metrics_path.read_text())["samples"]
        steps = sum(
            value
            for name, value in samples.items()
            if name.startswith("repro_ladder_steps_total")
        )
        assert steps >= 1
        assert any(
            name.startswith("repro_budget_breaches_total") for name in samples
        )
        steps = [
            event
            for event in load_events(str(events_path))
            if event["kind"] == "ladder_step"
        ]
        assert steps and steps[0]["from"] == "IPLoM"

    def test_supervise_exports_attempt_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.prom"
        events_path = tmp_path / "e.jsonl"
        assert main(
            [
                "supervise", "--dataset", "HDFS", "--size", "300",
                "--seed", "3", "--chain", "IPLoM,SLCT",
                "--fault-parser", "IPLoM", "--fault-parser-fails", "5",
                "--retries", "1",
                "--metrics-out", str(metrics_path),
                "--events-out", str(events_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "winner: SLCT" in out
        parsed = parse_prometheus(metrics_path.read_text())
        assert parsed["samples"][
            'repro_supervisor_attempts_total{parser="IPLoM",status="error"}'
        ] >= 1
        assert parsed["samples"][
            'repro_supervisor_attempts_total{parser="SLCT",status="ok"}'
        ] == 1
        kinds = {event["kind"] for event in load_events(str(events_path))}
        assert "fallback_report" in kinds

    def test_report_renders_post_mortem(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.prom"
        trace_path = tmp_path / "t.jsonl"
        assert main(
            [
                "stream", "SLCT", "--dataset", "HDFS", "--size", "600",
                "--seed", "3", "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["report", "--metrics", str(metrics_path), "--trace", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert "## Throughput" in out
        assert "parse_run" in out

    def test_report_without_artifacts_is_a_config_error(self, capsys):
        assert main(["report"]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_missing_file_is_a_data_error(self, capsys):
        assert main(["report", "--metrics", "/nonexistent/m.prom"]) == 3
        assert "error" in capsys.readouterr().err

    def test_soak_exports_degradation_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.prom"
        assert main(
            [
                "soak", "slow-consumer",
                "--metrics-out", str(metrics_path),
            ]
        ) == 0
        capsys.readouterr()
        parsed = parse_prometheus(metrics_path.read_text())
        ladder_steps = sum(
            value
            for name, value in parsed["samples"].items()
            if name.startswith("repro_ladder_steps_total")
        )
        assert ladder_steps >= 2


class TestSupervisorTelemetry:
    """Process-isolation metrics flow into the exposition and report."""

    def _crashy_serve(self, tmp_path):
        import functools

        from repro.common.types import LogRecord
        from repro.parsers import make_parser
        from repro.resilience import ProcessFault
        from repro.resilience.faults import PROC_EXIT
        from repro.service import ShardSupervisor

        telemetry = Telemetry.create(trace_id="t")
        fault = ProcessFault(PROC_EXIT, at_record=5, exit_code=3)
        supervisor = ShardSupervisor(
            "alpha", str(tmp_path / "data"),
            functools.partial(make_parser, "Drain"),
            parser_name="Drain", telemetry=telemetry,
            checkpoint_every=4, heartbeat_interval=0.02, watchdog=0.4,
            faults=(fault,),
        )
        for i in range(20):
            supervisor.submit(
                LogRecord(content=f"conn from host{i % 3} port {i}")
            )
        supervisor.drain()
        return telemetry

    def test_exposition_carries_supervisor_families(self, tmp_path):
        telemetry = self._crashy_serve(tmp_path)
        text = render_prometheus(telemetry.metrics)
        parsed = parse_prometheus(text)
        assert parsed["types"]["repro_shard_restarts_total"] == "counter"
        assert parsed["types"]["repro_shard_poison_records_total"] == (
            "counter"
        )
        assert parsed["types"]["repro_worker_heartbeat_age_seconds"] == (
            "gauge"
        )
        assert parsed["samples"][
            'repro_shard_restarts_total{tenant="alpha",reason="exit"}'
        ] == 1.0
        assert parsed["samples"][
            'repro_shard_state{tenant="alpha",state="drained"}'
        ] == 1.0
        assert (
            'repro_worker_heartbeat_age_seconds{tenant="alpha"}'
            in parsed["samples"]
        )

    def test_report_renders_shard_section(self, tmp_path, capsys):
        telemetry = self._crashy_serve(tmp_path)
        metrics_path = tmp_path / "m.prom"
        export_metrics(telemetry.metrics, str(metrics_path))
        assert main(["report", "--metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "## Shards" in out
        assert "alpha: 1 restart(s) (1 exit)" in out
