"""Property-based tests driven by the real template banks.

Hypothesis draws slices of actual generated datasets and checks the
parser/oracle/tagged contracts against ground truth — covering the
parsers with realistic token distributions rather than toy corpora.
"""

from collections import Counter

from hypothesis import example, given, settings, strategies as st

from repro.datasets import generate_dataset, get_dataset_spec
from repro.evaluation import f_measure
from repro.evaluation.fmeasure import singletonize_outliers
from repro.parsers import Iplom, OracleParser, TaggedLogParser, tag_records

#: One pre-generated pool per dataset; tests draw random windows.
_POOLS = {
    name: generate_dataset(get_dataset_spec(name), 1200, seed=99).records
    for name in ("HDFS", "Zookeeper", "Proxifier")
}

windows = st.tuples(
    st.sampled_from(sorted(_POOLS)),
    st.integers(min_value=0, max_value=900),
    st.integers(min_value=20, max_value=300),
)


@given(windows)
@settings(max_examples=25, deadline=None)
def test_oracle_is_always_perfect(window):
    name, start, length = window
    records = _POOLS[name][start : start + length]
    truth = [record.truth_event for record in records]
    result = OracleParser().parse(records)
    assert f_measure(result.assignments, truth) == 1.0


@given(windows)
@settings(max_examples=25, deadline=None)
def test_tagged_round_trip_is_exact(window):
    name, start, length = window
    records = _POOLS[name][start : start + length]
    truth = [record.truth_event for record in records]
    result = TaggedLogParser().parse(tag_records(records))
    assert f_measure(result.assignments, truth) == 1.0


@given(windows)
@settings(max_examples=15, deadline=None)
@example(window=("Zookeeper", 165, 20))  # 19 distinct events in 20 lines
@example(window=("Zookeeper", 669, 20))  # brittle: too small for the bar
def test_iplom_never_below_chance_on_real_banks(window):
    name, start, length = window
    records = _POOLS[name][start : start + length]
    truth = [record.truth_event for record in records]
    # The pairwise F-measure is degenerate when (almost) every line is
    # the sole instance of its event — there are no same-cluster pairs
    # to recover, so any parser scores ~0 regardless of quality.  Only
    # hold IPLoM to the above-chance bar on windows with real pair mass
    # and enough lines for its frequency heuristics to have signal:
    # sweeping the Zookeeper pool shows sub-30-line windows can score
    # as low as 0.22 while every >= 30-line window clears 0.5.
    repeated = sum(c for c in Counter(truth).values() if c > 1)
    if len(records) < 30 or repeated < len(records) // 3:
        return
    result = Iplom().parse(records)
    score = f_measure(singletonize_outliers(result.assignments), truth)
    assert score > 0.3


@given(windows)
@settings(max_examples=15, deadline=None)
def test_parse_is_deterministic_on_real_banks(window):
    name, start, length = window
    records = _POOLS[name][start : start + length]
    first = Iplom().parse(records)
    second = Iplom().parse(records)
    assert first.assignments == second.assignments


@given(windows)
@settings(max_examples=15, deadline=None)
def test_template_count_bounded_by_line_count(window):
    name, start, length = window
    records = _POOLS[name][start : start + length]
    result = Iplom().parse(records)
    assert len(result.events) <= len(records)
