"""Tests for raw-log / parse-result file I/O and sampling."""

import pytest

from repro.common.errors import DatasetError
from repro.common.types import LogRecord
from repro.datasets import (
    generate_dataset,
    get_dataset_spec,
    read_raw_log,
    sample_records,
    write_parse_result,
    write_raw_log,
)
from repro.parsers import Iplom
from repro.resilience import QuarantineSink


class TestRawLogRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [
            LogRecord(content="open a", timestamp="t1", session_id="s1"),
            LogRecord(content="close a", timestamp="t2", session_id=""),
        ]
        path = tmp_path / "raw.log"
        write_raw_log(records, str(path))
        loaded = read_raw_log(str(path))
        assert [r.content for r in loaded] == ["open a", "close a"]
        assert [r.timestamp for r in loaded] == ["t1", "t2"]
        assert [r.session_id for r in loaded] == ["s1", ""]

    def test_truth_not_persisted(self, tmp_path):
        records = [LogRecord(content="x", truth_event="E1")]
        path = tmp_path / "raw.log"
        write_raw_log(records, str(path))
        assert read_raw_log(str(path))[0].truth_event is None

    def test_bare_content_lines(self, tmp_path):
        path = tmp_path / "bare.log"
        path.write_text("just a message\nanother one\n")
        loaded = read_raw_log(str(path))
        assert [r.content for r in loaded] == [
            "just a message",
            "another one",
        ]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.log"
        path.write_text("a\n\n\nb\n")
        assert len(read_raw_log(str(path))) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_raw_log(str(tmp_path / "nope.log"))

    def test_tab_in_content_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            write_raw_log(
                [LogRecord(content="a\tb")], str(tmp_path / "bad.log")
            )

    def test_generated_dataset_round_trip(self, tmp_path):
        dataset = generate_dataset(get_dataset_spec("Zookeeper"), 80, seed=1)
        path = tmp_path / "zk.log"
        write_raw_log(dataset.records, str(path))
        loaded = read_raw_log(str(path))
        assert [r.content for r in loaded] == dataset.contents()


class TestHardenedLoading:
    """Per-record error policies on the byte-level read path."""

    def _dirty_file(self, tmp_path):
        # Three lines; the middle one is invalid UTF-8.  Byte offsets
        # of the line starts are 0, 11, and 11 + 9 = 20.
        path = tmp_path / "dirty.log"
        path.write_bytes(b"first line\n" + b"bad \xff\xfe ln\n" + b"third line\n")
        return str(path)

    def test_default_policy_raises_with_provenance(self, tmp_path):
        path = self._dirty_file(tmp_path)
        with pytest.raises(DatasetError) as excinfo:
            read_raw_log(path)
        message = str(excinfo.value)
        assert "undecodable" in message
        assert ":1" in message  # line number
        assert "byte offset 11" in message

    def test_skip_policy_drops_and_continues(self, tmp_path):
        loaded = read_raw_log(self._dirty_file(tmp_path), policy="skip")
        assert [r.content for r in loaded] == ["first line", "third line"]

    def test_quarantine_policy_records_byte_offsets(self, tmp_path):
        sink = QuarantineSink()
        loaded = read_raw_log(
            self._dirty_file(tmp_path), policy="quarantine", quarantine=sink
        )
        assert len(loaded) == 2
        assert len(sink) == 1
        record = sink.records[0]
        assert record.line_no == 1
        assert record.byte_offset == 11
        assert record.reason == "undecodable"
        assert "bad" in record.preview  # errors="replace" preview

    def test_replace_decoding_is_lossy_but_total(self, tmp_path):
        loaded = read_raw_log(
            self._dirty_file(tmp_path), encoding_errors="replace"
        )
        assert len(loaded) == 3
        assert "�" in loaded[1].content

    def test_max_line_bytes_caps_record_size(self, tmp_path):
        path = tmp_path / "long.log"
        path.write_text("short\n" + "x" * 500 + "\nalso short\n")
        sink = QuarantineSink()
        loaded = read_raw_log(
            str(path),
            policy="quarantine",
            quarantine=sink,
            max_line_bytes=100,
        )
        assert [r.content for r in loaded] == ["short", "also short"]
        assert sink.records[0].reason == "oversized"
        assert sink.records[0].byte_offset == 6

    def test_quarantine_file_is_written(self, tmp_path):
        qpath = tmp_path / "q.jsonl"
        sink = QuarantineSink(str(qpath))
        read_raw_log(
            self._dirty_file(tmp_path), policy="quarantine", quarantine=sink
        )
        sink.close()
        reloaded = QuarantineSink.read(str(qpath))
        assert len(reloaded) == 1
        assert reloaded[0].source.endswith("dirty.log")


class TestWriteParseResult:
    def test_writes_both_files(self, tmp_path):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 60, seed=2)
        result = Iplom().parse(dataset.records)
        events_path, structured_path = write_parse_result(
            result, str(tmp_path / "out")
        )
        events = open(events_path).read().splitlines()
        structured = open(structured_path).read().splitlines()
        assert len(events) == len(result.events)
        assert len(structured) == 60
        assert all("\t" in line for line in events)


class TestSampleRecords:
    def _records(self, n):
        return [LogRecord(content=f"line {i}") for i in range(n)]

    def test_sample_size(self):
        assert len(sample_records(self._records(100), 10, seed=1)) == 10

    def test_sample_is_subset_in_order(self):
        records = self._records(50)
        sampled = sample_records(records, 20, seed=2)
        positions = [records.index(r) for r in sampled]
        assert positions == sorted(positions)

    def test_oversample_returns_all(self):
        records = self._records(5)
        assert sample_records(records, 10, seed=3) == records

    def test_deterministic(self):
        records = self._records(50)
        assert sample_records(records, 10, seed=4) == sample_records(
            records, 10, seed=4
        )

    def test_zero_rejected(self):
        with pytest.raises(DatasetError):
            sample_records(self._records(5), 0)
