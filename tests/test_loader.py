"""Tests for raw-log / parse-result file I/O and sampling."""

import pytest

from repro.common.errors import DatasetError
from repro.common.types import LogRecord
from repro.datasets import (
    generate_dataset,
    get_dataset_spec,
    read_raw_log,
    sample_records,
    write_parse_result,
    write_raw_log,
)
from repro.parsers import Iplom


class TestRawLogRoundTrip:
    def test_round_trip(self, tmp_path):
        records = [
            LogRecord(content="open a", timestamp="t1", session_id="s1"),
            LogRecord(content="close a", timestamp="t2", session_id=""),
        ]
        path = tmp_path / "raw.log"
        write_raw_log(records, str(path))
        loaded = read_raw_log(str(path))
        assert [r.content for r in loaded] == ["open a", "close a"]
        assert [r.timestamp for r in loaded] == ["t1", "t2"]
        assert [r.session_id for r in loaded] == ["s1", ""]

    def test_truth_not_persisted(self, tmp_path):
        records = [LogRecord(content="x", truth_event="E1")]
        path = tmp_path / "raw.log"
        write_raw_log(records, str(path))
        assert read_raw_log(str(path))[0].truth_event is None

    def test_bare_content_lines(self, tmp_path):
        path = tmp_path / "bare.log"
        path.write_text("just a message\nanother one\n")
        loaded = read_raw_log(str(path))
        assert [r.content for r in loaded] == [
            "just a message",
            "another one",
        ]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.log"
        path.write_text("a\n\n\nb\n")
        assert len(read_raw_log(str(path))) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_raw_log(str(tmp_path / "nope.log"))

    def test_tab_in_content_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            write_raw_log(
                [LogRecord(content="a\tb")], str(tmp_path / "bad.log")
            )

    def test_generated_dataset_round_trip(self, tmp_path):
        dataset = generate_dataset(get_dataset_spec("Zookeeper"), 80, seed=1)
        path = tmp_path / "zk.log"
        write_raw_log(dataset.records, str(path))
        loaded = read_raw_log(str(path))
        assert [r.content for r in loaded] == dataset.contents()


class TestWriteParseResult:
    def test_writes_both_files(self, tmp_path):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 60, seed=2)
        result = Iplom().parse(dataset.records)
        events_path, structured_path = write_parse_result(
            result, str(tmp_path / "out")
        )
        events = open(events_path).read().splitlines()
        structured = open(structured_path).read().splitlines()
        assert len(events) == len(result.events)
        assert len(structured) == 60
        assert all("\t" in line for line in events)


class TestSampleRecords:
    def _records(self, n):
        return [LogRecord(content=f"line {i}") for i in range(n)]

    def test_sample_size(self):
        assert len(sample_records(self._records(100), 10, seed=1)) == 10

    def test_sample_is_subset_in_order(self):
        records = self._records(50)
        sampled = sample_records(records, 20, seed=2)
        positions = [records.index(r) for r in sampled]
        assert positions == sorted(positions)

    def test_oversample_returns_all(self):
        records = self._records(5)
        assert sample_records(records, 10, seed=3) == records

    def test_deterministic(self):
        records = self._records(50)
        assert sample_records(records, 10, seed=4) == sample_records(
            records, 10, seed=4
        )

    def test_zero_rejected(self):
        with pytest.raises(DatasetError):
            sample_records(self._records(5), 0)
