"""Unit tests for the IPLoM parser."""

import pytest

from repro.common.errors import ParserConfigurationError
from repro.common.tokenize import template_matches
from repro.parsers import Iplom
from repro.parsers.iplom import Iplom as IplomClass


class TestConfiguration:
    def test_rejects_ct_out_of_range(self):
        with pytest.raises(ParserConfigurationError):
            Iplom(ct=1.5)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ParserConfigurationError):
            Iplom(lower_bound=0.9, upper_bound=0.2)

    def test_rejects_zero_lower_bound(self):
        with pytest.raises(ParserConfigurationError):
            Iplom(lower_bound=0.0)

    def test_rejects_pst_one(self):
        with pytest.raises(ParserConfigurationError):
            Iplom(pst=1.0)

    def test_defaults_accepted(self):
        Iplom()


class TestPartitionBySize:
    def test_groups_by_token_count(self):
        token_lists = [["a"], ["b", "c"], ["d"], ["e", "f"]]
        partitions = IplomClass._partition_by_size(token_lists)
        assert sorted(sorted(p) for p in partitions) == [[0, 2], [1, 3]]


class TestClustering:
    def test_separates_events_of_same_length(self):
        contents = (
            ["open file a.txt by root", "open file b.txt by root"] * 3
            + ["shut gate c.xml by root", "shut gate d.xml by root"] * 3
        )
        result = Iplom().parse_contents(contents)
        open_ids = {result.assignments[0], result.assignments[1]}
        shut_ids = {result.assignments[6], result.assignments[7]}
        assert open_ids.isdisjoint(shut_ids)

    def test_masks_variable_positions(self):
        contents = [f"open file f{i}.txt by root" for i in range(10)]
        result = Iplom().parse_contents(contents)
        assert len(result.events) == 1
        assert result.events[0].template == "open file * by root"

    def test_no_outliers_without_pst(self):
        contents = ["a b c", "unique line here", "x y"]
        result = Iplom().parse_contents(contents)
        assert "OUTLIER" not in result.assignments

    def test_pst_sends_small_partitions_to_outliers(self):
        contents = ["common event type one"] * 20 + ["rare alone"]
        result = Iplom(pst=0.1).parse_contents(contents)
        assert result.assignments[-1] == "OUTLIER"
        assert result.assignments[0] != "OUTLIER"

    def test_empty_input(self):
        result = Iplom().parse([])
        assert len(result) == 0

    def test_single_line(self):
        result = Iplom().parse_contents(["only one line"])
        assert result.assignments == ["E1"]
        assert result.events[0].template == "only one line"

    def test_empty_content_line(self):
        result = Iplom().parse_contents(["", "", "a b"])
        assert result.assignments[0] == result.assignments[1]
        assert result.assignments[0] != result.assignments[2]

    def test_templates_cover_members(self):
        contents = [
            f"session {i} started by user{i % 3} at level {i % 2}"
            for i in range(30)
        ]
        result = Iplom().parse_contents(contents)
        for structured in result.structured():
            template = result.template_of(structured.event_id)
            assert template_matches(template, structured.record.content)

    def test_deterministic(self, toy_contents):
        a = Iplom().parse_contents(toy_contents)
        b = Iplom().parse_contents(toy_contents)
        assert a.assignments == b.assignments

    def test_bijection_split_on_paired_constants(self):
        # Two token positions with a 1-1 relation (state names) should
        # separate the two events even though lengths match.
        contents = ["unit up link active"] * 8 + ["unit down link idle"] * 8
        result = Iplom().parse_contents(contents)
        assert result.assignments[0] != result.assignments[8]

    def test_free_parameter_column_not_split(self):
        # A column with a distinct value per line is a parameter; IPLoM
        # must not shatter the event into singletons.
        contents = [f"generating core dump {i}" for i in range(40)]
        result = Iplom().parse_contents(contents)
        assert len(result.events) == 1
