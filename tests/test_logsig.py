"""Unit tests for the LogSig parser."""

import pytest

from repro.common.errors import ParserConfigurationError
from repro.parsers import LogSig
from repro.parsers.logsig import word_pairs


class TestConfiguration:
    def test_rejects_zero_groups(self):
        with pytest.raises(ParserConfigurationError):
            LogSig(groups=0)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ParserConfigurationError):
            LogSig(groups=2, max_iterations=0)

    def test_rejects_bad_template_threshold(self):
        with pytest.raises(ParserConfigurationError):
            LogSig(groups=2, template_threshold=0.0)
        with pytest.raises(ParserConfigurationError):
            LogSig(groups=2, template_threshold=1.5)


class TestWordPairs:
    def test_pairs_of_three_tokens(self):
        assert word_pairs(("a", "b", "c")) == frozenset(
            {("a", "b"), ("a", "c"), ("b", "c")}
        )

    def test_single_token_has_no_pairs(self):
        assert word_pairs(("a",)) == frozenset()

    def test_empty(self):
        assert word_pairs(()) == frozenset()

    def test_order_preserved(self):
        assert ("b", "a") not in word_pairs(("a", "b"))


class TestClustering:
    def _corpus(self):
        return (
            [f"request served for client c{i}" for i in range(10)]
            + [f"cache miss on key k{i} level L2" for i in range(10)]
            + [f"worker w{i} heartbeat ok" for i in range(10)]
        )

    def test_finds_the_three_signatures(self):
        result = LogSig(groups=3, seed=1).parse_contents(self._corpus())
        assignments = result.assignments
        assert len(set(assignments[:10])) == 1
        assert len(set(assignments[10:20])) == 1
        assert len(set(assignments[20:])) == 1
        assert len(set(assignments)) == 3

    def test_groups_capped_by_unique_messages(self):
        result = LogSig(groups=50, seed=1).parse_contents(["a b", "c d"])
        assert len(result.events) <= 2

    def test_empty_input(self):
        assert len(LogSig(groups=3, seed=1).parse([])) == 0

    def test_seed_reproducible(self):
        corpus = self._corpus()
        a = LogSig(groups=3, seed=5).parse_contents(corpus)
        b = LogSig(groups=3, seed=5).parse_contents(corpus)
        assert a.assignments == b.assignments

    def test_identical_messages_move_together(self):
        contents = ["dup line x"] * 20 + ["other event y"] * 20
        result = LogSig(groups=2, seed=2).parse_contents(contents)
        assert len(set(result.assignments[:20])) == 1

    def test_template_masks_variable_column(self):
        contents = [f"request served for client c{i}" for i in range(10)]
        result = LogSig(groups=1, seed=3).parse_contents(contents)
        assert result.events[0].template == "request served for client *"

    def test_template_threshold_keeps_majority_token(self):
        contents = ["status ok"] * 9 + ["status bad"]
        result = LogSig(
            groups=1, seed=4, template_threshold=0.5
        ).parse_contents(contents)
        assert result.events[0].template == "status ok"

    def test_single_group(self):
        contents = ["x y z", "x y w"]
        result = LogSig(groups=1, seed=1).parse_contents(contents)
        assert len(set(result.assignments)) == 1

    def test_empty_groups_dropped(self):
        # With more groups than structure, unused groups must not
        # produce phantom events.
        result = LogSig(groups=10, seed=1).parse_contents(
            ["a b c"] * 5 + ["d e f"] * 5
        )
        assert len(result.events) == len(set(result.assignments))
