"""Tests for the parameter-tuning harness (Finding 4 protocol)."""

import pytest

from repro.common.errors import EvaluationError
from repro.common.types import LogRecord
from repro.evaluation.tuning import (
    DEFAULT_GRIDS,
    TuningReport,
    expand_grid,
    tune_on_dataset,
    tune_on_sample,
)


class TestExpandGrid:
    def test_cartesian_product(self):
        combos = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert len(combos) == 4
        assert {"a": 2, "b": "y"} in combos

    def test_empty_grid(self):
        assert expand_grid({}) == [{}]

    def test_single_axis(self):
        assert expand_grid({"k": [3]}) == [{"k": 3}]


class TestTuneOnSample:
    def _sample(self, n=150):
        records, truth = [], []
        for i in range(n):
            records.append(
                LogRecord(content=f"open file f{i}a.txt by root")
            )
            truth.append("open")
        for i in range(n):
            records.append(
                LogRecord(content=f"close file g{i}b.txt rc {1000 + i}")
            )
            truth.append("close")
        return records, truth

    def test_finds_reasonable_slct_support(self):
        records, truth = self._sample()
        report = tune_on_sample(
            "SLCT",
            records,
            truth,
            grid={"support": [0.01, 0.05, 0.2]},
            seed=1,
        )
        assert report.best.f_measure > 0.9
        # The middle support wins: 0.01 of 300 lines (=3) admits no
        # junk, 0.2 (=60) still passes, but both extremes must not
        # *beat* a sane value.
        assert report.best.params["support"] in (0.01, 0.05)

    def test_candidates_cover_grid(self):
        records, truth = self._sample()
        grid = {"support": [0.01, 0.3]}
        report = tune_on_sample("SLCT", records, truth, grid=grid)
        assert len(report.candidates) == 2

    def test_timings_recorded(self):
        records, truth = self._sample()
        report = tune_on_sample(
            "SLCT", records, truth, grid={"support": [0.01]}
        )
        assert report.total_seconds >= 0
        assert all(c.seconds >= 0 for c in report.candidates)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(EvaluationError):
            tune_on_sample("SLCT", [LogRecord(content="x")], [])

    def test_empty_sample_rejected(self):
        with pytest.raises(EvaluationError):
            tune_on_sample("SLCT", [], [])

    def test_unknown_parser_without_grid_rejected(self):
        records, truth = self._sample()
        with pytest.raises(EvaluationError):
            tune_on_sample("NoDefaultGrid", records, truth)

    def test_best_requires_candidates(self):
        report = TuningReport(parser="X", dataset="Y", sample_size=0)
        with pytest.raises(EvaluationError):
            report.best


class TestTuneOnDataset:
    def test_tunes_on_zookeeper_sample(self):
        report = tune_on_dataset(
            "SLCT",
            "Zookeeper",
            sample_size=300,
            grid={"support": [0.005, 0.2]},
            seed=1,
        )
        assert report.dataset == "Zookeeper"
        assert report.sample_size == 300
        # The tight support must beat the absurd one on this data.
        scores = {
            candidate.params["support"]: candidate.f_measure
            for candidate in report.candidates
        }
        assert scores[0.005] > scores[0.2]

    def test_default_grids_exist_for_all_parsers(self):
        assert set(DEFAULT_GRIDS) == {"SLCT", "IPLoM", "LKE", "LogSig", "Drain"}

    def test_randomized_parser_reproducible(self):
        a = tune_on_dataset(
            "LogSig",
            "Proxifier",
            sample_size=150,
            grid={"groups": [8]},
            seed=3,
        )
        b = tune_on_dataset(
            "LogSig",
            "Proxifier",
            sample_size=150,
            grid={"groups": [8]},
            seed=3,
        )
        assert a.best.f_measure == b.best.f_measure
