"""Unit tests for repro.common.tokenize."""

import pytest

from repro.common.tokenize import (
    WILDCARD,
    generalize,
    is_wildcard,
    render_template,
    template_from_cluster,
    template_matches,
    tokenize,
)


class TestTokenize:
    def test_simple_split(self):
        assert tokenize("a b c") == ["a", "b", "c"]

    def test_collapses_whitespace(self):
        assert tokenize("a   b\t c") == ["a", "b", "c"]

    def test_strips_edges(self):
        assert tokenize("  a b  ") == ["a", "b"]

    def test_empty_message(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t ") == []

    def test_preserves_punctuation_inside_tokens(self):
        assert tokenize("src: /10.0.0.1:5000") == ["src:", "/10.0.0.1:5000"]


class TestWildcard:
    def test_wildcard_token(self):
        assert is_wildcard(WILDCARD)

    def test_non_wildcard(self):
        assert not is_wildcard("BLOCK*")

    def test_star_prefix_is_not_wildcard(self):
        assert not is_wildcard("*x")


class TestRenderTemplate:
    def test_joins_with_single_spaces(self):
        assert render_template(["a", "*", "c"]) == "a * c"

    def test_empty(self):
        assert render_template([]) == ""


class TestTemplateMatches:
    def test_exact_match(self):
        assert template_matches("open file", "open file")

    def test_wildcard_position(self):
        assert template_matches("open *", "open a.txt")

    def test_length_mismatch(self):
        assert not template_matches("open *", "open a.txt now")

    def test_constant_mismatch(self):
        assert not template_matches("open *", "close a.txt")

    def test_all_wildcards(self):
        assert template_matches("* * *", "any three tokens")

    def test_empty_template_matches_empty_message(self):
        assert template_matches("", "")


class TestGeneralize:
    def test_agreeing_positions_kept(self):
        assert generalize(["open", "a"], ["open", "b"]) == ["open", "*"]

    def test_full_agreement(self):
        assert generalize(["x", "y"], ["x", "y"]) == ["x", "y"]

    def test_wildcard_absorbs(self):
        assert generalize(["*", "y"], ["*", "y"]) == ["*", "y"]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            generalize(["a"], ["a", "b"])


class TestTemplateFromCluster:
    def test_single_member(self):
        assert template_from_cluster([["open", "a"]]) == ["open", "a"]

    def test_majority_does_not_matter_any_disagreement_masks(self):
        cluster = [["open", "a"], ["open", "a"], ["open", "b"]]
        assert template_from_cluster(cluster) == ["open", "*"]

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            template_from_cluster([])

    def test_ragged_cluster_raises(self):
        with pytest.raises(ValueError):
            template_from_cluster([["a"], ["a", "b"]])
