"""Tests for the end-to-end PCA anomaly detection pipeline."""

from repro.datasets import generate_hdfs_sessions
from repro.mining.anomaly import detect_anomalies
from repro.parsers import OracleParser


class TestDetectAnomalies:
    def test_pipeline_runs_and_flags_sessions(self):
        dataset = generate_hdfs_sessions(600, seed=1)
        result = detect_anomalies(OracleParser().parse(dataset.records))
        assert result.flagged_sessions <= set(dataset.labels)
        assert result.threshold > 0

    def test_flagged_mostly_true_anomalies_with_oracle(self):
        dataset = generate_hdfs_sessions(1200, seed=2)
        result = detect_anomalies(OracleParser().parse(dataset.records))
        if result.flagged_sessions:
            precision = len(
                result.flagged_sessions & dataset.anomaly_blocks
            ) / len(result.flagged_sessions)
            assert precision > 0.8

    def test_detects_distinctive_anomalies(self):
        dataset = generate_hdfs_sessions(1200, seed=3)
        result = detect_anomalies(OracleParser().parse(dataset.records))
        distinctive = {
            block
            for block, scenario in dataset.scenarios.items()
            if scenario in {"replication", "metadata", "write_failure"}
        }
        if distinctive:
            recall = len(result.flagged_sessions & distinctive) / len(
                distinctive
            )
            assert recall > 0.5

    def test_subtle_anomalies_invisible_to_tfidf_pca(self):
        # TF-IDF zeroes ubiquitous-event columns, so count-only
        # (under-replication) anomalies cannot be seen — the mechanism
        # behind the paper's 66% ground-truth detection ceiling.
        dataset = generate_hdfs_sessions(1200, seed=4)
        result = detect_anomalies(OracleParser().parse(dataset.records))
        subtle = {
            block
            for block, scenario in dataset.scenarios.items()
            if scenario == "subtle"
        }
        assert not (result.flagged_sessions & subtle)

    def test_spe_aligned_with_sessions(self):
        dataset = generate_hdfs_sessions(300, seed=5)
        result = detect_anomalies(OracleParser().parse(dataset.records))
        assert len(result.spe) == len(result.matrix.session_ids)

    def test_n_components_override(self):
        dataset = generate_hdfs_sessions(300, seed=6)
        parsed = OracleParser().parse(dataset.records)
        result = detect_anomalies(parsed, n_components=3)
        assert result.model.fitted_components == 3

    def test_tf_idf_toggle_changes_outcome(self):
        dataset = generate_hdfs_sessions(600, seed=7)
        parsed = OracleParser().parse(dataset.records)
        with_tfidf = detect_anomalies(parsed, use_tf_idf=True)
        without = detect_anomalies(parsed, use_tf_idf=False)
        assert (
            with_tfidf.flagged_sessions != without.flagged_sessions
            or with_tfidf.threshold != without.threshold
        )
