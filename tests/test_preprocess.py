"""Tests for domain-knowledge preprocessing (Finding 2 machinery)."""

import pytest

from repro.common.errors import ParserConfigurationError
from repro.parsers.preprocess import (
    BLOCK_ID,
    CORE_ID,
    IP_ADDRESS,
    Preprocessor,
    Rule,
    default_preprocessor,
)


class TestRules:
    def test_ip_rule(self):
        assert IP_ADDRESS.apply("src /10.251.31.5 dest") == "src /* dest"

    def test_ip_with_port(self):
        assert IP_ADDRESS.apply("dest: /10.251.31.5:50010") == "dest: /*"

    def test_block_id_rule(self):
        assert BLOCK_ID.apply("block blk_-1608999687919862906 done") == (
            "block * done"
        )

    def test_block_id_positive(self):
        assert BLOCK_ID.apply("blk_123") == "*"

    def test_core_id_rule(self):
        assert CORE_ID.apply("generating core.2275") == "generating *"

    def test_core_rule_requires_word_boundary(self):
        assert CORE_ID.apply("multicore.5 stays") == "multicore.5 stays"

    def test_invalid_regex_rejected(self):
        with pytest.raises(ParserConfigurationError):
            Rule("bad", "([unclosed")


class TestPreprocessor:
    def test_applies_rules_in_order(self):
        preprocessor = Preprocessor(rules=(BLOCK_ID, IP_ADDRESS))
        content = "Receiving block blk_1 src: /10.0.0.1:9 dest: /10.0.0.2:9"
        assert preprocessor(content) == "Receiving block * src: /* dest: /*"

    def test_rule_names(self):
        preprocessor = Preprocessor(rules=(BLOCK_ID, IP_ADDRESS))
        assert preprocessor.rule_names == ["block_id", "ip"]

    def test_no_match_is_identity(self):
        preprocessor = Preprocessor(rules=(CORE_ID,))
        assert preprocessor("nothing to see") == "nothing to see"


class TestDefaultPreprocessor:
    def test_hdfs_has_block_and_ip(self):
        preprocessor = default_preprocessor("HDFS")
        assert preprocessor.rule_names == ["block_id", "ip"]

    def test_bgl_has_core(self):
        assert default_preprocessor("BGL").rule_names == ["core_id"]

    def test_hpc_and_zookeeper_have_ip(self):
        assert default_preprocessor("HPC").rule_names == ["ip"]
        assert default_preprocessor("Zookeeper").rule_names == ["ip"]

    def test_proxifier_has_none(self):
        assert default_preprocessor("Proxifier") is None

    def test_unknown_dataset_raises(self):
        with pytest.raises(ParserConfigurationError):
            default_preprocessor("unknown")

    def test_case_insensitive(self):
        assert default_preprocessor("bgl").rule_names == ["core_id"]
