"""The public API surface: everything README advertises must exist."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_parsers_exported(self):
        for name in ("Slct", "Iplom", "Lke", "LogSig", "OracleParser",
                     "ChunkedParallelParser"):
            assert name in repro.__all__

    def test_quickstart_flow_from_readme(self):
        from repro import (
            Iplom,
            f_measure,
            generate_dataset,
            get_dataset_spec,
        )

        dataset = generate_dataset(get_dataset_spec("HDFS"), 200, seed=1)
        parsed = Iplom().parse(dataset.records)
        score = f_measure(parsed.assignments, dataset.truth_assignments)
        assert 0.0 <= score <= 1.0

    def test_mining_flow_from_readme(self):
        from repro import (
            OracleParser,
            detect_anomalies,
            generate_hdfs_sessions,
        )

        sessions = generate_hdfs_sessions(300, seed=1)
        parsed = OracleParser().parse(sessions.records)
        result = detect_anomalies(parsed)
        assert result.flagged_sessions <= set(sessions.labels)


SUBMODULES = [
    "repro.common.tokenize",
    "repro.common.types",
    "repro.common.textutil",
    "repro.common.rng",
    "repro.common.errors",
    "repro.datasets.base",
    "repro.datasets.generator",
    "repro.datasets.registry",
    "repro.datasets.loader",
    "repro.datasets.stats",
    "repro.datasets.hdfs",
    "repro.datasets.bgl",
    "repro.datasets.hpc",
    "repro.datasets.zookeeper",
    "repro.datasets.proxifier",
    "repro.parsers.base",
    "repro.parsers.preprocess",
    "repro.parsers.slct",
    "repro.parsers.iplom",
    "repro.parsers.lke",
    "repro.parsers.logsig",
    "repro.parsers.oracle",
    "repro.parsers.registry",
    "repro.parsers.parallel",
    "repro.parsers.tagged",
    "repro.mining.event_matrix",
    "repro.mining.tfidf",
    "repro.mining.pca",
    "repro.mining.anomaly",
    "repro.mining.verification",
    "repro.mining.model",
    "repro.mining.invariants",
    "repro.evaluation.fmeasure",
    "repro.evaluation.metrics",
    "repro.evaluation.accuracy",
    "repro.evaluation.efficiency",
    "repro.evaluation.mining_impact",
    "repro.evaluation.tuning",
    "repro.evaluation.reports",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", SUBMODULES)
def test_every_module_imports_and_is_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 40
