"""Unit tests for the SLCT parser."""

import pytest

from repro.common.errors import ParserConfigurationError
from repro.common.types import ParseResult, records_from_contents
from repro.parsers import Slct, default_preprocessor


class TestConfiguration:
    def test_rejects_zero_support(self):
        with pytest.raises(ParserConfigurationError):
            Slct(support=0)

    def test_rejects_negative_support(self):
        with pytest.raises(ParserConfigurationError):
            Slct(support=-1)

    def test_fractional_support_scales_with_input(self):
        assert Slct(support=0.1)._absolute_support(200) == 20

    def test_absolute_support_passes_through(self):
        assert Slct(support=5)._absolute_support(200) == 5

    def test_fractional_support_floor_is_one(self):
        assert Slct(support=0.001)._absolute_support(10) == 1


class TestClustering:
    def test_basic_template_extraction(self, toy_contents, toy_truth):
        result = Slct(support=2).parse_contents(toy_contents)
        templates = {e.template for e in result.events}
        assert "open file * by root" in templates
        assert "close file * status 0" in templates

    def test_same_event_lines_share_cluster(self, toy_contents):
        result = Slct(support=2).parse_contents(toy_contents)
        assert result.assignments[0] == result.assignments[1]
        assert result.assignments[3] == result.assignments[4]

    def test_sub_support_lines_are_outliers(self):
        contents = ["alpha beta gamma"] * 5 + ["unique message here"]
        result = Slct(support=3).parse_contents(contents)
        assert result.assignments[-1] == ParseResult.OUTLIER_EVENT_ID

    def test_outliers_have_no_template(self):
        contents = ["a b"] * 4 + ["x y"]
        result = Slct(support=3).parse_contents(contents)
        with pytest.raises(KeyError):
            result.template_of(ParseResult.OUTLIER_EVENT_ID)

    def test_empty_input(self):
        result = Slct(support=2).parse([])
        assert result.events == []
        assert result.assignments == []

    def test_identical_lines_single_cluster(self):
        result = Slct(support=2).parse_contents(["same line"] * 10)
        assert len(result.events) == 1
        assert result.events[0].template == "same line"

    def test_different_lengths_not_merged(self):
        contents = ["put key value"] * 5 + ["put key value extra"] * 5
        result = Slct(support=3).parse_contents(contents)
        assert result.assignments[0] != result.assignments[5]

    def test_frequent_parameter_value_splits_cluster(self):
        # The classic SLCT artifact: a recurring parameter value becomes
        # a frequent word and splits its event (Table III's mechanism).
        contents = ["job done code 0"] * 10 + ["job done code 1"] * 10
        result = Slct(support=5).parse_contents(contents)
        assert result.assignments[0] != result.assignments[10]

    def test_rare_parameter_values_masked(self):
        contents = [f"job done code {i}" for i in range(10)]
        result = Slct(support=5).parse_contents(contents)
        assert result.events[0].template == "job done code *"

    def test_every_line_assigned(self, toy_contents):
        result = Slct(support=2).parse_contents(toy_contents)
        assert len(result.assignments) == len(toy_contents)

    def test_preprocessing_merges_variable_values(self):
        contents = [f"generating core.{256 * (i % 2)}" for i in range(10)]
        raw = Slct(support=4).parse_contents(contents)
        preprocessed = Slct(
            support=4, preprocessor=default_preprocessor("BGL")
        ).parse_contents(contents)
        assert len(raw.events) == 2
        assert len(preprocessed.events) == 1

    def test_template_matches_members(self, toy_contents):
        result = Slct(support=2).parse_contents(toy_contents)
        for structured in result.structured():
            if structured.event_id == ParseResult.OUTLIER_EVENT_ID:
                continue
            template = result.template_of(structured.event_id)
            from repro.common.tokenize import template_matches

            assert template_matches(template, structured.record.content)
