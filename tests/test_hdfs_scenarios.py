"""Per-scenario tests of the HDFS session simulator's event signatures.

Each anomaly scenario must produce the event footprint its detection
story depends on; these tests pin those contracts so future generator
edits cannot silently invalidate Table III.
"""

import pytest

from repro.datasets import generate_hdfs_sessions
from repro.datasets.hdfs import DATANODE_PORT, REBALANCE_TARGETS


@pytest.fixture(scope="module")
def big():
    return generate_hdfs_sessions(3000, seed=21)


def _events_by_block(dataset):
    by_block = {}
    for record in dataset.records:
        by_block.setdefault(record.session_id, []).append(
            record.truth_event
        )
    return by_block


def _blocks_of(dataset, scenario):
    return [
        block
        for block, name in dataset.scenarios.items()
        if name == scenario
    ]


class TestWriteFailure:
    def test_has_receive_exceptions(self, big):
        events = _events_by_block(big)
        for block in _blocks_of(big, "write_failure"):
            assert events[block].count("E11") >= 2

    def test_has_interrupted_responder(self, big):
        events = _events_by_block(big)
        for block in _blocks_of(big, "write_failure"):
            assert "E26" in events[block]

    def test_under_replicated(self, big):
        events = _events_by_block(big)
        for block in _blocks_of(big, "write_failure"):
            assert events[block].count("E5") < 3


class TestReplication:
    def test_transfer_failures_and_timeout(self, big):
        events = _events_by_block(big)
        for block in _blocks_of(big, "replication"):
            assert "E14" in events[block]
            assert "E24" in events[block]
            assert "E21" in events[block]

    def test_transfers_target_rebalance_nodes(self, big):
        targets = {
            f"{node}:{DATANODE_PORT}" for node in REBALANCE_TARGETS
        }
        for record in big.records:
            if record.truth_event != "E14":
                continue
            assert any(target in record.content for target in targets)


class TestMetadata:
    def test_redundant_addstoredblock(self, big):
        events = _events_by_block(big)
        for block in _blocks_of(big, "metadata"):
            assert events[block].count("E22") >= 2


class TestServing:
    def test_repeated_serving_exceptions(self, big):
        events = _events_by_block(big)
        for block in _blocks_of(big, "serving"):
            exceptions = sum(
                events[block].count(event) for event in ("E9", "E28")
            )
            assert exceptions >= 2


class TestSubtle:
    def test_no_rare_events_at_all(self, big):
        rare = {
            "E7", "E9", "E10", "E11", "E14", "E16", "E17", "E20",
            "E21", "E22", "E23", "E24", "E25", "E26", "E27", "E28",
        }
        events = _events_by_block(big)
        for block in _blocks_of(big, "subtle"):
            assert not rare & set(events[block])


class TestNormal:
    def test_balancer_rate_small(self, big):
        events = _events_by_block(big)
        normal = _blocks_of(big, "normal")
        with_balancer = sum(
            1 for block in normal if "E15" in events[block]
        )
        assert 0 < with_balancer / len(normal) < 0.06

    def test_fully_replicated(self, big):
        events = _events_by_block(big)
        for block in _blocks_of(big, "normal"):
            assert events[block].count("E5") == 3
