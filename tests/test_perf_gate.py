"""Unit tests for the CI throughput gate (``benchmarks/perf_gate.py``).

The gate is not an installed package — it is loaded straight from the
benchmarks directory, the same file CI executes.
"""

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "perf_gate.py",
)
_spec = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def _result_file(tmp_path, lines_per_second, **extra):
    path = tmp_path / "BENCH_stream.json"
    payload = {"lines_per_second": lines_per_second, "lines": 100_000}
    payload.update(extra)
    path.write_text(json.dumps(payload))
    return str(path)


def _history_file(tmp_path, values):
    path = tmp_path / "history.jsonl"
    path.write_text(
        "".join(
            json.dumps({"lines_per_second": value}) + "\n" for value in values
        )
    )
    return str(path)


class TestPolicy:
    def test_reference_is_median_of_window(self):
        history = [{"lines_per_second": v} for v in (100, 900, 110, 120, 130)]
        # window=3 → last three: 110, 120, 130
        assert perf_gate.reference_throughput(history, window=3) == 120

    def test_median_shrugs_off_one_outlier(self):
        history = [{"lines_per_second": v} for v in (100, 100, 5, 100, 100)]
        assert perf_gate.reference_throughput(history, window=5) == 100

    def test_unusable_entries_skipped(self):
        history = [
            {"lines_per_second": 0},
            {"lines_per_second": "fast"},
            {"note": "no throughput"},
            {"lines_per_second": 200},
        ]
        assert perf_gate.reference_throughput(history) == 200
        assert perf_gate.reference_throughput([{"junk": 1}]) is None

    def test_tolerance_floor(self):
        ok, floor = perf_gate.evaluate(86, 100, tolerance=0.15)
        assert ok and floor == pytest.approx(85.0)
        ok, _ = perf_gate.evaluate(84.9, 100, tolerance=0.15)
        assert not ok

    def test_exact_floor_passes(self):
        ok, _ = perf_gate.evaluate(85.0, 100, tolerance=0.15)
        assert ok


class TestHistoryIO:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps({"lines_per_second": 100}) + "\n"
            + '{"lines_per_second": 2'  # runner killed mid-append
        )
        entries = perf_gate.load_history(str(path))
        assert [e["lines_per_second"] for e in entries] == [100]

    def test_missing_history_is_empty(self, tmp_path):
        assert perf_gate.load_history(str(tmp_path / "absent.jsonl")) == []

    def test_result_requires_throughput(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"lines": 5}))
        with pytest.raises(ValueError):
            perf_gate.load_result(str(path))


class TestMain:
    def test_empty_history_seeds_and_passes(self, tmp_path, capsys):
        result = _result_file(tmp_path, 1000)
        history = str(tmp_path / "history.jsonl")
        assert perf_gate.main([result, history]) == 0
        assert "seeded" in capsys.readouterr().out
        entries = perf_gate.load_history(history)
        assert len(entries) == 1
        assert entries[0]["lines_per_second"] == 1000

    def test_pass_records_and_returns_zero(self, tmp_path, capsys):
        result = _result_file(tmp_path, 95)
        history = _history_file(tmp_path, [100, 100, 100])
        assert perf_gate.main([result, history]) == 0
        assert "ok" in capsys.readouterr().out
        assert len(perf_gate.load_history(history)) == 4

    def test_regression_fails_and_is_not_recorded(self, tmp_path, capsys):
        result = _result_file(tmp_path, 50)
        history = _history_file(tmp_path, [100, 100, 100])
        assert perf_gate.main([result, history]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # Retrying a real regression must not drag the reference down.
        assert len(perf_gate.load_history(history)) == 3

    def test_record_flag_accepts_new_baseline(self, tmp_path):
        result = _result_file(tmp_path, 50)
        history = _history_file(tmp_path, [100, 100, 100])
        assert perf_gate.main([result, history, "--record"]) == 1
        assert len(perf_gate.load_history(history)) == 4

    def test_window_and_tolerance_flags(self, tmp_path):
        # A tight window keys the reference to recent (fast) runs; a
        # wide one lets ancient slow runs drag the median down.
        result = _result_file(tmp_path, 80)
        history = _history_file(tmp_path, [10, 10, 10, 100, 100])
        assert perf_gate.main(
            [result, history, "--window", "3", "--tolerance", "0.1"]
        ) == 1
        assert perf_gate.main(
            [result, history, "--window", "5", "--tolerance", "0.1"]
        ) == 0

    def test_commit_stamped_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "abc123")
        entry = perf_gate.history_entry({"lines_per_second": 10})
        assert entry["commit"] == "abc123"
        monkeypatch.delenv("GITHUB_SHA")
        assert "commit" not in perf_gate.history_entry(
            {"lines_per_second": 10}
        )
