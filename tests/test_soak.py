"""Deterministic chaos-soak tests: seeded schedules force the ladder.

Each scenario replays a scripted resource-pressure schedule against a
real streaming parse of generated HDFS sessions and audits the invariant
set from the issue: the ladder fires in order, never skips a rung, every
transition carries budget evidence and a mining-impact estimate, and the
run always finalizes a valid structured log and event matrix.

The CI soak job parametrizes the seed through ``REPRO_SOAK_SEED`` so a
two-seed matrix exercises different schedules without editing the test.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.common.errors import ValidationError
from repro.degradation import SCENARIO_KINDS, SoakScenario, run_soak, soak_ladder


def _seeds() -> list[int]:
    env = os.environ.get("REPRO_SOAK_SEED")
    if env is not None:
        return [int(env)]
    return [7, 11]


@pytest.mark.parametrize("kind", SCENARIO_KINDS)
@pytest.mark.parametrize("seed", _seeds())
def test_soak_scenario_passes_audit(kind, seed):
    report = run_soak(SoakScenario(kind=kind, seed=seed))
    assert report.ok, report.describe()
    assert not report.violations
    assert report.quarantined == 0


def test_soak_transitions_follow_the_ladder_in_order():
    report = run_soak(SoakScenario(kind="memory-pressure", seed=7))
    rungs = [rung.parser for rung in soak_ladder().rungs]
    events = report.report.events
    assert len(events) >= 2
    for event in events:
        at = rungs.index(event.from_rung)
        assert rungs[at + 1] == event.to_rung  # exactly one rung, no skips
        assert event.sample is not None
        assert event.breaches
        assert event.mining_impact
    assert [event.sequence for event in events] == list(
        range(1, len(events) + 1)
    )


def test_soak_always_finalizes_valid_outputs():
    report = run_soak(SoakScenario(kind="slow-consumer", seed=7))
    result = report.report.result
    assert result is not None
    assert len(result.assignments) == report.report.counters.stream.lines
    assert "PENDING" not in result.assignments
    matrix = report.report.matrix
    assert matrix is not None
    assert matrix.n_sessions > 0


def test_soak_deadline_squeeze_uses_scripted_clock():
    # Same seed -> identical schedule -> identical transition count.
    first = run_soak(SoakScenario(kind="deadline-squeeze", seed=23))
    second = run_soak(SoakScenario(kind="deadline-squeeze", seed=23))
    assert first.ok and second.ok
    assert len(first.report.events) == len(second.report.events)
    assert [e.to_rung for e in first.report.events] == [
        e.to_rung for e in second.report.events
    ]


def test_soak_scenario_validates_kind_and_knobs():
    with pytest.raises(ValidationError):
        SoakScenario(kind="solar-flare")
    with pytest.raises(ValidationError):
        SoakScenario(kind="memory-pressure", n_blocks=0)
    with pytest.raises(ValidationError):
        SoakScenario(kind="memory-pressure", min_transitions=0)


def test_cli_soak_command(capsys):
    assert main(["soak", "slow-consumer", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "degradation" in out


def test_cli_soak_rejects_unknown_scenario(capsys):
    with pytest.raises(SystemExit):
        main(["soak", "solar-flare"])
