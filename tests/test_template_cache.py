"""Unit tests for the streaming engine's LRU template cache."""

import pytest

from repro.common.errors import ParserConfigurationError
from repro.common.types import LogRecord
from repro.parsers.base import Clustering, LogParser
from repro.streaming import StreamingParser, TemplateCache, subsumes


def test_subsumes_requires_equal_length_and_coverage():
    assert subsumes(["open", "*", "*"], ["open", "file", "*"])
    assert not subsumes(["open", "file", "*"], ["open", "*", "*"])
    assert not subsumes(["open", "*"], ["open", "file", "x"])
    assert subsumes(["*"], ["*"])


def test_exact_fast_path_and_counters():
    cache = TemplateCache(capacity=8)
    cache.insert(0, ("connect", "*", "ok"))
    line = ("connect", "10.0.0.1", "ok")
    assert cache.match(line) == 0
    assert cache.template_hits == 1 and cache.exact_hits == 0
    # The first hit memoizes the exact signature; the repeat is exact.
    assert cache.match(line) == 0
    assert cache.exact_hits == 1
    assert cache.match(("connect", "10.0.0.2", "ok")) == 0
    assert cache.template_hits == 2
    assert cache.match(("disconnect",)) is None
    assert cache.misses == 1
    assert cache.hits == 3
    assert cache.hit_rate == pytest.approx(3 / 4)


def test_wildcard_collision_most_specific_template_wins():
    cache = TemplateCache(capacity=8)
    cache.insert(0, ("open", "*", "*"))
    cache.insert(1, ("open", "file", "*"))
    cache.insert(2, ("*", "file", "done"))
    # All three cover this line; the one with most constants wins.
    assert cache.match(("open", "file", "done")) == 1
    # Only the general ones cover these.
    assert cache.match(("open", "sock", "x")) == 0
    assert cache.match(("close", "file", "done")) == 2


def test_wildcard_collision_tie_goes_to_oldest_slot():
    cache = TemplateCache(capacity=8)
    cache.insert(0, ("open", "file", "*"))
    cache.insert(1, ("open", "*", "done"))
    # Both cover this line with two constants each.
    assert cache.match(("open", "file", "done")) == 0


def test_lru_eviction_order_respects_use():
    cache = TemplateCache(capacity=2)
    cache.insert(0, ("a", "*"))
    cache.insert(1, ("b", "*"))
    # Touch slot 0 so slot 1 becomes the least recently used.
    assert cache.match(("a", "x")) == 0
    cache.insert(2, ("c", "*"))
    assert cache.evictions == 1
    assert 0 in cache and 2 in cache and 1 not in cache
    # The evicted template no longer matches fresh lines...
    assert cache.match(("b", "zzz")) is None


def test_stale_exact_memo_survives_eviction():
    cache = TemplateCache(capacity=1)
    cache.insert(0, ("a", "*"))
    assert cache.match(("a", "x")) == 0  # memoizes "a x" -> 0
    cache.insert(1, ("b", "*"))  # evicts slot 0's template
    assert 0 not in cache
    # The memoized assignment is still correct: slot 0 remains a valid
    # event in the engine's permanent table.
    assert cache.match(("a", "x")) == 0
    assert cache.match(("a", "y")) is None


def test_find_generalizer_and_specializations():
    cache = TemplateCache(capacity=8)
    cache.insert(0, ("put", "obj", "*"))
    cache.insert(1, ("put", "blob", "*"))
    cache.insert(2, ("get", "obj", "*"))
    assert sorted(cache.find_specializations(("put", "*", "*"))) == [0, 1]
    cache.insert(3, ("put", "*", "*"))
    assert cache.find_generalizer(("put", "tmp", "*")) == 3
    assert cache.find_generalizer(("del", "x", "*")) is None


def test_invalid_capacity_rejected():
    with pytest.raises(ParserConfigurationError):
        TemplateCache(capacity=0)
    with pytest.raises(ParserConfigurationError):
        TemplateCache(exact_capacity=-1)


class _FirstTokenParser(LogParser):
    """Deterministic, scale-free stub: cluster by (first token, length)."""

    name = "FirstToken"

    def _cluster(self, token_lists):
        groups: dict[tuple[str, int], int] = {}
        labels = []
        templates = []
        for tokens in token_lists:
            key = (tokens[0], len(tokens))
            if key not in groups:
                groups[key] = len(templates)
                templates.append([tokens[0]] + ["*"] * (len(tokens) - 1))
            labels.append(groups[key])
        return Clustering(labels=labels, templates=templates)


def test_evicted_template_relearned_as_identical_event():
    # Capacity 1 forces an eviction between the two "alpha" sightings;
    # the re-learned template must map back to the same event.
    engine = StreamingParser(
        _FirstTokenParser, flush_size=1, cache_capacity=1
    )
    engine.feed(LogRecord(content="alpha one two"))
    engine.feed(LogRecord(content="beta one two"))  # evicts "alpha *"
    engine.feed(LogRecord(content="alpha three four"))
    engine.finalize()
    result = engine.result()
    assert engine.counters.evictions >= 1
    assert sorted(e.template for e in result.events) == [
        "alpha * *",
        "beta * *",
    ]
    first, _, relearned = result.assignments
    assert first == relearned
    by_id = {e.event_id: e.template for e in result.events}
    assert by_id[first] == "alpha * *"
