"""Tests for the resource-budgeted degradation runtime."""

from __future__ import annotations

from random import Random

import pytest

from repro.common.errors import (
    BudgetExceededError,
    FallbackExhaustedError,
    ParserConfigurationError,
    ValidationError,
)
from repro.common.types import LogRecord
from repro.datasets.hdfs import generate_hdfs_sessions
from repro.degradation import (
    BudgetLimit,
    BudgetMonitor,
    BudgetedParser,
    DegradationLadder,
    DegradedSession,
    LadderRung,
    MiningImpactLedger,
    ResourceBudget,
    default_ladder,
    ladder_chain,
)
from repro.degradation.budget import (
    DIM_MEMORY,
    DIM_QUEUE,
    LEVEL_HARD,
    LEVEL_SOFT,
)
from repro.degradation.ladder import TRIGGER_HARD, TRIGGER_SOFT
from repro.parsers import make_parser
from repro.resilience.supervisor import (
    STATUS_BUDGET,
    ParserSupervisor,
    RetryPolicy,
)
from repro.streaming import StreamingParser


def distinct_records(n: int) -> list[LogRecord]:
    """n records that are all cache misses (every content distinct)."""
    return [
        LogRecord(content=f"event kind{i} happened on node{i} port {i}")
        for i in range(n)
    ]


def ramp_probe(values):
    """Memory probe replaying *values*, then holding the last one."""
    state = {"i": 0}

    def probe() -> float:
        value = values[min(state["i"], len(values) - 1)]
        state["i"] += 1
        return value

    return probe


# ----------------------------------------------------------------------
# Budgets and the monitor
# ----------------------------------------------------------------------


def test_budget_limit_grades_soft_and_hard():
    limit = BudgetLimit(soft=10, hard=20)
    assert limit.grade(5) is None
    assert limit.grade(10) == LEVEL_SOFT
    assert limit.grade(20) == LEVEL_HARD


def test_budget_limit_validation():
    with pytest.raises(ValidationError):
        BudgetLimit(soft=-1)
    with pytest.raises(ValidationError):
        BudgetLimit(soft=5, hard=2)


def test_resource_budget_of_derives_soft_limits():
    budget = ResourceBudget.of(memory_mb=64, wall_seconds=10)
    limits = budget.limits()
    assert limits[DIM_MEMORY].hard == 64 * 1024 * 1024
    assert limits[DIM_MEMORY].soft == 32 * 1024 * 1024
    assert "wall" in budget.describe()
    assert ResourceBudget().describe() == "budget: unlimited"
    with pytest.raises(ValidationError):
        ResourceBudget.of(memory_mb=1, soft_fraction=0.0)


def test_monitor_uses_injected_probes_and_sorts_hard_first():
    budget = ResourceBudget(
        memory_bytes=BudgetLimit(soft=100, hard=200),
        queue_depth=BudgetLimit(soft=5, hard=10),
    )
    monitor = BudgetMonitor(budget, memory_probe=lambda: 150.0)
    sample, breaches = monitor.evaluate(queue_depth=50)
    assert sample.memory_bytes == 150.0
    assert sample.queue_depth == 50.0
    # queue is a hard breach, memory only soft: hard must sort first.
    assert [b.level for b in breaches] == [LEVEL_HARD, LEVEL_SOFT]
    assert breaches[0].dimension == DIM_QUEUE
    assert "breach" in breaches[0].describe()


def test_monitor_enforce_raises_on_hard_breach_only():
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=10, hard=100))
    soft_monitor = BudgetMonitor(budget, memory_probe=lambda: 50.0)
    _sample, breaches = soft_monitor.enforce()
    assert [b.level for b in breaches] == [LEVEL_SOFT]
    hard_monitor = BudgetMonitor(budget, memory_probe=lambda: 100.0)
    with pytest.raises(BudgetExceededError) as excinfo:
        hard_monitor.enforce(context="test parse")
    assert excinfo.value.breaches
    assert excinfo.value.breaches[0].level == LEVEL_HARD
    assert "test parse" in str(excinfo.value)


def test_monitor_wall_clock_uses_injected_clock():
    clock_state = {"now": 100.0}
    budget = ResourceBudget(wall_seconds=BudgetLimit(soft=1, hard=5))
    monitor = BudgetMonitor(
        budget, clock=lambda: clock_state["now"], memory_probe=lambda: 0.0
    )
    monitor.start()
    clock_state["now"] = 102.0
    sample = monitor.sample()
    assert sample.wall_seconds == pytest.approx(2.0)
    assert [b.level for b in monitor.check(sample)] == [LEVEL_SOFT]


# ----------------------------------------------------------------------
# The ladder
# ----------------------------------------------------------------------


def test_default_ladder_orders_fidelity_down():
    names = [rung.parser for rung in default_ladder()]
    assert names == [
        "LKE", "LogSig", "IPLoM", "Drain", "SLCT", "Passthrough"
    ]


def test_ladder_soft_steps_need_sustained_pressure():
    ladder = DegradationLadder(cooldown_checks=3)
    ladder.note_check(True)
    ladder.note_check(True)
    assert not ladder.ready()  # two breached checks < cooldown of 3
    ladder.note_check(False)  # relief resets the streak
    ladder.note_check(True)
    ladder.note_check(True)
    ladder.note_check(True)
    assert ladder.ready()


def test_ladder_steps_one_rung_at_a_time_with_audit_trail():
    ladder = DegradationLadder(cooldown_checks=1)
    first = ladder.step_down(trigger=TRIGGER_SOFT, at_line=10)
    second = ladder.step_down(trigger=TRIGGER_HARD, at_line=20)
    assert (first.from_rung, first.to_rung) == ("LKE", "LogSig")
    assert (second.from_rung, second.to_rung) == ("LogSig", "IPLoM")
    assert [event.sequence for event in ladder.events] == [1, 2]
    assert ladder.current.parser == "IPLoM"
    assert "[IPLoM]" in ladder.describe()


def test_ladder_exhaustion_refuses_further_steps():
    ladder = DegradationLadder([LadderRung("Passthrough")])
    assert ladder.exhausted
    assert ladder.peek_next() is None
    with pytest.raises(ValidationError):
        ladder.step_down(trigger=TRIGGER_SOFT, at_line=0)


def test_ladder_rung_validation():
    with pytest.raises(ValidationError):
        LadderRung("IPLoM", cache_capacity=0)
    with pytest.raises(ValidationError):
        DegradationLadder([])
    with pytest.raises(ValidationError):
        DegradationLadder(cooldown_checks=0)


# ----------------------------------------------------------------------
# The mining-impact ledger
# ----------------------------------------------------------------------


def test_ledger_prices_a_downgrade():
    ledger = MiningImpactLedger()
    cost = ledger.record(1, "IPLoM", "SLCT")
    assert cost.detection_delta < 0  # Table III: IPLoM 64% -> SLCT 11%
    assert cost.false_alarm_delta > 0
    assert "IPLoM -> SLCT" in cost.describe()
    assert "ledger" in ledger.describe()
    assert ledger.total_detection_delta == pytest.approx(cost.detection_delta)


def test_every_default_rung_builds_its_parser():
    # A rung that cannot construct its parser crashes the runtime at
    # the worst possible moment — mid step-down under budget pressure.
    # (Regression: the LogSig rung once lacked its required `groups`.)
    for rung in default_ladder():
        assert rung.build_parser().name == rung.parser


def test_ledger_prices_every_default_rung():
    # Every rung of the default ladder (Drain included) must have a
    # reference row, or a downgrade could not be priced mid-run.
    ledger = MiningImpactLedger()
    for rung in default_ladder():
        assert ledger.estimate_for(rung.parser).parser == rung.parser
    # Drain sits between IPLoM and SLCT in fidelity: stepping onto it
    # costs a little detection, stepping off it to SLCT costs a lot.
    assert ledger.cost("IPLoM", "Drain").detection_delta <= 0
    assert ledger.cost("Drain", "SLCT").detection_delta < -0.3


def test_ledger_rejects_unknown_parser():
    with pytest.raises(ValidationError):
        MiningImpactLedger().estimate_for("NoSuchParser")


# ----------------------------------------------------------------------
# The passthrough rung
# ----------------------------------------------------------------------


def test_passthrough_gives_each_signature_its_own_event():
    parser = make_parser("passthrough")
    records = [
        LogRecord(content="open file a"),
        LogRecord(content="open file b"),
        LogRecord(content="open file a"),
    ]
    result = parser.parse(records)
    assert len(result.events) == 2
    assert result.assignments[0] == result.assignments[2]
    assert result.assignments[0] != result.assignments[1]


# ----------------------------------------------------------------------
# Engine backpressure (bounded ingest)
# ----------------------------------------------------------------------


def engine_with(overflow: str, **kwargs) -> StreamingParser:
    return StreamingParser(
        lambda: make_parser("IPLoM"),
        flush_size=1000,
        max_pending=5,
        overflow=overflow,
        **kwargs,
    )


def test_backpressure_shed_drops_overflowing_misses():
    engine = engine_with("shed")
    results = [engine.feed(record) for record in distinct_records(12)]
    assert results[:5] == [0, 1, 2, 3, 4]
    assert results[5:] == [-1] * 7
    assert engine.counters.shed == 7
    assert engine.counters.lines == 5


def test_backpressure_sample_keeps_a_census():
    engine = engine_with("sample", overflow_sample_keep=2)
    results = [engine.feed(record) for record in distinct_records(11)]
    admitted = [r for r in results if r >= 0]
    # 5 fill the buffer; of the 6 overflowing, every 2nd is admitted.
    assert len(admitted) == 8
    assert engine.counters.shed == 3


def test_backpressure_block_flushes_synchronously():
    engine = engine_with("block")
    for record in distinct_records(12):
        assert engine.feed(record) >= 0
    assert engine.counters.shed == 0
    assert engine.counters.lines == 12
    assert engine.counters.flushes >= 1


def test_backpressure_validation():
    with pytest.raises(ParserConfigurationError):
        engine_with("explode")
    with pytest.raises(ParserConfigurationError):
        StreamingParser(lambda: make_parser("IPLoM"), max_pending=0)


def test_shed_returns_minus_one_without_corrupting_state():
    engine = engine_with("shed")
    for record in distinct_records(8):
        engine.feed(record)
    engine.finalize()
    result = engine.result()
    assert len(result.assignments) == 5  # only admitted lines retained
    assert all(a != "PENDING" for a in result.assignments)


# ----------------------------------------------------------------------
# Live reconfiguration
# ----------------------------------------------------------------------


def test_reconfigure_swaps_parser_and_shrinks_cache():
    engine = StreamingParser(
        lambda: make_parser("IPLoM"), flush_size=100, cache_capacity=64
    )
    for record in distinct_records(10):
        engine.feed(record)
    applied = engine.reconfigure(
        lambda: make_parser("SLCT"), flush_size=50, cache_capacity=8
    )
    assert applied["flush_parser"] == "SLCT"
    assert applied["flush_size"] == (100, 50)
    assert applied["cache_capacity"] == (64, 8)
    assert engine.cache.capacity == 8


def test_reconfigure_smaller_flush_size_drains_backlog():
    engine = StreamingParser(lambda: make_parser("IPLoM"), flush_size=1000)
    for record in distinct_records(20):
        engine.feed(record)
    assert engine.pending_count == 20
    engine.reconfigure(flush_size=10)
    assert engine.pending_count < 20  # shrinking triggered the flush
    assert engine.counters.flushes >= 1


def test_cache_resize_validation_via_reconfigure():
    engine = StreamingParser(lambda: make_parser("IPLoM"))
    with pytest.raises(ParserConfigurationError):
        engine.reconfigure(cache_capacity=0)
    with pytest.raises(ParserConfigurationError):
        engine.reconfigure(overflow="explode")


# ----------------------------------------------------------------------
# DegradedSession: budget checks drive the ladder
# ----------------------------------------------------------------------


def fast_ladder(cooldown: int = 1) -> DegradationLadder:
    return DegradationLadder(
        [
            LadderRung("IPLoM", cache_capacity=64, flush_size=5000),
            LadderRung("SLCT", cache_capacity=8, flush_size=5000),
            LadderRung("Passthrough", cache_capacity=4, flush_size=5000),
        ],
        cooldown_checks=cooldown,
    )


def test_degraded_session_steps_down_under_soft_pressure():
    mb = 1024 * 1024
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=32 * mb, hard=64 * mb))
    monitor = BudgetMonitor(
        budget, memory_probe=ramp_probe([10 * mb, 40 * mb, 40 * mb, 40 * mb])
    )
    session = DegradedSession(
        fast_ladder(cooldown=2), monitor, check_every=10, track_matrix=False
    )
    session.consume(distinct_records(60))
    report = session.finalize()
    assert report.degraded
    assert report.events[0].from_rung == "IPLoM"
    assert report.events[0].to_rung == "SLCT"
    assert report.events[0].trigger == TRIGGER_SOFT
    assert report.events[0].breaches and report.events[0].sample is not None
    assert report.events[0].mining_impact  # non-empty estimate
    assert report.final_rung in ("SLCT", "Passthrough")
    assert "degradation" in report.describe()


def test_drain_headed_ladder_steps_down_under_pressure():
    # A Drain-headed ladder degrades exactly like the seed ladders: one
    # audited rung at a time, each transition priced by the ledger.
    mb = 1024 * 1024
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=32 * mb, hard=64 * mb))
    monitor = BudgetMonitor(
        budget, memory_probe=ramp_probe([10 * mb, 40 * mb, 40 * mb, 40 * mb])
    )
    ladder = DegradationLadder(
        [
            LadderRung("Drain", cache_capacity=64, flush_size=5000),
            LadderRung("SLCT", cache_capacity=8, flush_size=5000),
            LadderRung("Passthrough", cache_capacity=4, flush_size=5000),
        ],
        cooldown_checks=2,
    )
    session = DegradedSession(ladder, monitor, check_every=10, track_matrix=False)
    session.consume(distinct_records(60))
    report = session.finalize()
    assert report.degraded
    assert report.events[0].from_rung == "Drain"
    assert report.events[0].to_rung == "SLCT"
    assert report.events[0].mining_impact  # priced by the ledger
    assert session.engine.counters.lines == 60


def test_degraded_session_hard_breach_steps_without_cooldown():
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=10, hard=20))
    monitor = BudgetMonitor(budget, memory_probe=ramp_probe([5, 25]))
    session = DegradedSession(
        fast_ladder(cooldown=99), monitor, check_every=5, track_matrix=False
    )
    session.consume(distinct_records(10))
    assert [event.trigger for event in session.ladder.events] == [TRIGGER_HARD]


def test_degraded_session_raises_when_hard_breach_meets_exhausted_ladder():
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=10, hard=20))
    monitor = BudgetMonitor(budget, memory_probe=lambda: 100.0)
    ladder = DegradationLadder([LadderRung("Passthrough")])
    session = DegradedSession(ladder, monitor, check_every=5, track_matrix=False)
    with pytest.raises(BudgetExceededError) as excinfo:
        session.consume(distinct_records(10))
    assert excinfo.value.breaches


def test_degraded_session_applies_rung_sampling():
    budget = ResourceBudget()  # unlimited: stay on the entry rung
    monitor = BudgetMonitor(budget, memory_probe=lambda: 0.0)
    ladder = DegradationLadder([LadderRung("Passthrough", sample_keep=2)])
    session = DegradedSession(ladder, monitor, check_every=100, track_matrix=False)
    session.consume(distinct_records(10))
    assert session.sampled_out == 5
    assert session.engine.counters.lines == 5


def test_degraded_session_rejects_bad_check_every():
    monitor = BudgetMonitor(ResourceBudget(), memory_probe=lambda: 0.0)
    with pytest.raises(ValidationError):
        DegradedSession(fast_ladder(), monitor, check_every=0)


# ----------------------------------------------------------------------
# Budgets inside supervised fallback chains
# ----------------------------------------------------------------------


def test_budgeted_parser_raises_on_hard_breach(toy_records):
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=10, hard=20))
    monitor = BudgetMonitor(budget, memory_probe=lambda: 100.0)
    wrapped = BudgetedParser(make_parser("IPLoM"), monitor)
    assert wrapped.name == "Budgeted(IPLoM)"
    with pytest.raises(BudgetExceededError):
        wrapped.parse(toy_records)


def test_supervised_ladder_completes_on_lower_rung():
    records = generate_hdfs_sessions(8, seed=3).records
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=10, hard=50))
    # Over the hard limit for the first two admission checks (IPLoM and
    # SLCT), relieved before Passthrough runs.
    monitor = BudgetMonitor(budget, memory_probe=ramp_probe([100, 100, 1]))
    supervisor = ParserSupervisor(
        ladder_chain(fast_ladder(), monitor),
        retry=RetryPolicy(attempts=3, base_delay=0),
        sleep=lambda _s: None,
    )
    outcome = supervisor.parse(records)
    assert outcome.parser == "Passthrough"  # the report says which rung won
    budget_attempts = outcome.report.budget_breached
    # One budget attempt per breached rung, no retries of a blown budget.
    assert [a.parser for a in budget_attempts] == ["IPLoM", "SLCT"]
    assert all(a.status == STATUS_BUDGET for a in budget_attempts)


def test_supervised_ladder_exhausts_only_after_every_rung():
    records = generate_hdfs_sessions(5, seed=3).records
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=10, hard=50))
    monitor = BudgetMonitor(budget, memory_probe=lambda: 100.0)
    ladder = fast_ladder()
    supervisor = ParserSupervisor(
        ladder_chain(ladder, monitor),
        retry=RetryPolicy(attempts=2, base_delay=0),
        sleep=lambda _s: None,
    )
    with pytest.raises(FallbackExhaustedError) as excinfo:
        supervisor.parse(records)
    tried = [attempt.parser for attempt in excinfo.value.report.attempts]
    # Every rung — passthrough included — was tried before giving up.
    assert tried == [rung.parser for rung in ladder.rungs]


def test_supervisor_budget_status_skips_retries(toy_records):
    sleeps: list[float] = []
    budget = ResourceBudget(memory_bytes=BudgetLimit(soft=10, hard=20))
    monitor = BudgetMonitor(budget, memory_probe=ramp_probe([100, 1]))

    def budgeted_factory():
        return BudgetedParser(make_parser("IPLoM"), monitor)

    supervisor = ParserSupervisor(
        [("A", budgeted_factory), ("B", budgeted_factory)],
        retry=RetryPolicy(attempts=3, base_delay=0.5),
        sleep=sleeps.append,
    )
    outcome = supervisor.parse(toy_records)
    assert outcome.parser == "B"
    assert [a.status for a in outcome.report.attempts][0] == STATUS_BUDGET
    assert sleeps == []  # a blown budget is never retried, so no backoff


def test_random_jitter_rng_is_plumbed_through(toy_records):
    # With an rng and a jittered policy, the supervisor still succeeds
    # and the jittered delays stay within the policy's bounds.
    from repro.resilience.faults import FlakyFactory

    sleeps: list[float] = []
    flaky = FlakyFactory(lambda: make_parser("IPLoM"), fail_times=2)
    policy = RetryPolicy(attempts=3, base_delay=0.1, backoff=2.0, jitter=0.5)
    supervisor = ParserSupervisor(
        [("IPLoM", flaky)],
        retry=policy,
        sleep=sleeps.append,
        rng=Random(42),
    )
    supervisor.parse(toy_records)
    assert len(sleeps) == 2
    for attempt, actual in enumerate(sleeps, start=1):
        base = min(policy.max_delay, policy.base_delay * policy.backoff ** (attempt - 1))
        assert base * 0.5 <= actual <= base * 1.5
