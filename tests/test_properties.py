"""Cross-module property-based tests (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.common.textutil import edit_distance, longest_common_subsequence
from repro.common.tokenize import (
    template_from_cluster,
    template_matches,
    render_template,
    tokenize,
)
from repro.parsers import Iplom, LogSig, Slct
from repro.parsers.lke import (
    _weighted_edit_distance,
    estimate_threshold_two_means,
)

token = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
    min_size=1,
    max_size=5,
)
token_list = st.lists(token, min_size=0, max_size=8)
corpus = st.lists(
    st.sampled_from(
        [
            "open file alpha",
            "open file beta",
            "close file alpha now",
            "close file beta now",
            "error code 1",
            "error code 2",
        ]
    ),
    min_size=1,
    max_size=40,
)


class TestEditDistanceAxioms:
    @given(token_list)
    def test_identity(self, tokens):
        assert edit_distance(tokens, tokens) == 0

    @given(token_list, token_list)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(token_list, token_list)
    def test_bounded_by_longer_length(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))

    @given(token_list, token_list, token_list)
    @settings(max_examples=30)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(
            b, c
        ) + 1e-9


class TestWeightedDistanceProperties:
    @given(token_list)
    def test_identity(self, tokens):
        assert _weighted_edit_distance(tuple(tokens), tuple(tokens)) == 0.0

    @given(token_list, token_list)
    def test_non_negative(self, a, b):
        assert _weighted_edit_distance(tuple(a), tuple(b)) >= 0.0

    @given(token_list, token_list)
    def test_bound_consistency(self, a, b):
        exact = _weighted_edit_distance(tuple(a), tuple(b))
        bounded = _weighted_edit_distance(tuple(a), tuple(b), bound=exact)
        assert bounded == exact or math.isinf(bounded)


class TestLcsProperties:
    @given(token_list, token_list)
    def test_lcs_no_longer_than_either(self, a, b):
        lcs = longest_common_subsequence(a, b)
        assert len(lcs) <= min(len(a), len(b))

    @given(token_list)
    def test_lcs_with_self_is_self(self, tokens):
        assert longest_common_subsequence(tokens, tokens) == tokens

    @given(token_list, token_list)
    def test_lcs_is_subsequence_of_both(self, a, b):
        lcs = longest_common_subsequence(a, b)

        def is_subsequence(needle, haystack):
            iterator = iter(haystack)
            return all(item in iterator for item in needle)

        assert is_subsequence(lcs, a)
        assert is_subsequence(lcs, b)


class TestTemplateProperties:
    @given(st.lists(token_list.filter(lambda t: len(t) == 4), min_size=1,
                    max_size=6))
    def test_cluster_template_matches_all_members(self, cluster):
        template = render_template(template_from_cluster(cluster))
        for member in cluster:
            content = render_template(member)
            if "*" not in content:  # wildcard tokens in input are untestable
                assert template_matches(template, content)


class TestThresholdEstimateProperties:
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                    max_size=50))
    def test_threshold_within_range(self, distances):
        threshold = estimate_threshold_two_means(distances)
        assert min(distances) <= threshold <= max(distances) + 1e-6


class TestParserContracts:
    @given(corpus)
    @settings(max_examples=25, deadline=None)
    def test_slct_assigns_every_line(self, contents):
        result = Slct(support=2).parse_contents(contents)
        assert len(result.assignments) == len(contents)

    @given(corpus)
    @settings(max_examples=25, deadline=None)
    def test_iplom_assigns_every_line_no_outliers(self, contents):
        result = Iplom().parse_contents(contents)
        assert len(result.assignments) == len(contents)
        assert "OUTLIER" not in result.assignments

    @given(corpus)
    @settings(max_examples=15, deadline=None)
    def test_logsig_group_count_bounded(self, contents):
        result = LogSig(groups=3, seed=1).parse_contents(contents)
        assert len(result.events) <= 3

    @given(corpus)
    @settings(max_examples=15, deadline=None)
    def test_identical_lines_share_cluster_iplom(self, contents):
        result = Iplom().parse_contents(contents)
        by_content: dict[str, set[str]] = {}
        for structured in result.structured():
            by_content.setdefault(
                structured.record.content, set()
            ).add(structured.event_id)
        assert all(len(ids) == 1 for ids in by_content.values())
