"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import (
    EventTemplate,
    LogRecord,
    ParseResult,
    records_from_contents,
)


class TestLogRecord:
    def test_tokens(self):
        record = LogRecord(content="open file a")
        assert record.tokens == ["open", "file", "a"]

    def test_defaults(self):
        record = LogRecord(content="x")
        assert record.timestamp == ""
        assert record.session_id == ""
        assert record.truth_event is None

    def test_frozen(self):
        record = LogRecord(content="x")
        with pytest.raises(AttributeError):
            record.content = "y"


class TestEventTemplate:
    def test_matches_instance(self):
        event = EventTemplate(event_id="E1", template="open *")
        assert event.matches("open a.txt")
        assert not event.matches("close a.txt")

    def test_tokens(self):
        assert EventTemplate("E1", "a * c").tokens == ["a", "*", "c"]


def _result():
    records = records_from_contents(["open a", "open b", "weird line"])
    return ParseResult(
        events=[EventTemplate("E1", "open *")],
        assignments=["E1", "E1", ParseResult.OUTLIER_EVENT_ID],
        records=records,
    )


class TestParseResult:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ParseResult(
                events=[],
                assignments=["E1"],
                records=[],
            )

    def test_len(self):
        assert len(_result()) == 3

    def test_event_ids(self):
        assert _result().event_ids == ["E1"]

    def test_template_of(self):
        assert _result().template_of("E1") == "open *"

    def test_template_of_unknown_raises(self):
        with pytest.raises(KeyError):
            _result().template_of("E9")

    def test_template_of_outlier_raises(self):
        with pytest.raises(KeyError):
            _result().template_of(ParseResult.OUTLIER_EVENT_ID)

    def test_structured_order_and_ids(self):
        structured = list(_result().structured())
        assert [s.line_no for s in structured] == [0, 1, 2]
        assert [s.event_id for s in structured] == ["E1", "E1", "OUTLIER"]

    def test_groups(self):
        groups = _result().groups()
        assert groups["E1"] == [0, 1]
        assert groups[ParseResult.OUTLIER_EVENT_ID] == [2]

    def test_events_file_lines(self):
        assert _result().events_file_lines() == ["E1\topen *"]

    def test_structured_file_lines_count(self):
        assert len(_result().structured_file_lines()) == 3


class TestRecordsFromContents:
    def test_round_trip_contents(self):
        records = records_from_contents(["a", "b"])
        assert [r.content for r in records] == ["a", "b"]

    def test_with_session_ids(self):
        records = records_from_contents(["a", "b"], session_ids=["s1", "s2"])
        assert [r.session_id for r in records] == ["s1", "s2"]

    def test_session_id_length_mismatch(self):
        with pytest.raises(ValueError):
            records_from_contents(["a"], session_ids=["s1", "s2"])
