"""Run the package's doctest examples as part of the suite."""

import doctest
import importlib

import pytest

# Module paths resolved via importlib because some package __init__
# files re-export same-named callables (repro.common.tokenize is both a
# module and a function attribute of repro.common).
MODULE_NAMES = [
    "repro.common.tokenize",
    "repro.evaluation.fmeasure",
    "repro.evaluation.tuning",
    "repro.parsers.logsig",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module)
    assert results.failed == 0
    assert results.attempted > 0
