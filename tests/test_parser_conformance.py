"""Registry-wide parser conformance suite.

One parametrized contract, applied to *every* parser in the registry:
empty input, single lines, duplicate lines, unicode/control bytes,
determinism under a fixed seed, template-count sanity, and feed/batch
agreement where the parser supports incremental feeding.  The suite
derives its parser list from :func:`repro.parsers.available_parsers`,
and :func:`test_registry_fully_covered` fails loudly the moment a new
backend is registered without a conformance entry — future parsers get
this coverage for free (or a red test telling them to claim it).
"""

import pytest

from repro.common.types import LogRecord, ParseResult
from repro.parsers import available_parsers, make_parser

#: Conformance entry per registry parser: a zero-argument factory with
#: deterministic parameters (seeds fixed, thresholds small enough for
#: tiny corpora).  Every name in the registry MUST appear here.
CONFORMANCE_FACTORIES = {
    "SLCT": lambda: make_parser("SLCT", support=2),
    "IPLoM": lambda: make_parser("IPLoM"),
    "LKE": lambda: make_parser("LKE", seed=1),
    "LogSig": lambda: make_parser("LogSig", groups=3, seed=1),
    "Drain": lambda: make_parser("Drain"),
    "GroundTruth": lambda: make_parser("GroundTruth"),
    "Passthrough": lambda: make_parser("Passthrough"),
}

ALL_PARSERS = sorted(CONFORMANCE_FACTORIES)

CORPUS = [
    "send block 1 to node 10.0.0.1",
    "send block 2 to node 10.0.0.2",
    "send block 3 to node 10.0.0.3",
    "delete block 4 from cache",
    "delete block 5 from cache",
    "session opened for user alpha",
    "session opened for user beta",
]


def _records(parser_name: str, contents) -> list[LogRecord]:
    """Wrap contents; the oracle additionally needs truth labels."""
    if parser_name == "GroundTruth":
        ids: dict[str, str] = {}
        return [
            LogRecord(
                content=content,
                truth_event=ids.setdefault(content, f"T{len(ids) + 1}"),
            )
            for content in contents
        ]
    return [LogRecord(content=content) for content in contents]


def _parse(parser_name: str, contents) -> ParseResult:
    parser = CONFORMANCE_FACTORIES[parser_name]()
    return parser.parse(_records(parser_name, contents))


def test_registry_fully_covered():
    # A newly registered backend without a conformance entry is a bug:
    # it would silently miss every contract test below.
    assert set(CONFORMANCE_FACTORIES) == set(available_parsers())


@pytest.mark.parametrize("parser_name", ALL_PARSERS)
class TestParserConformance:
    def test_empty_input(self, parser_name):
        result = _parse(parser_name, [])
        assert len(result) == 0
        assert result.events == []
        assert result.assignments == []

    def test_single_line(self, parser_name):
        result = _parse(parser_name, ["one single log line"])
        assert len(result.assignments) == 1
        assert len(result.records) == 1

    def test_duplicate_lines_assigned_identically(self, parser_name):
        result = _parse(
            parser_name, ["same exact line"] * 6 + ["other line kind"] * 6
        )
        by_content: dict[str, set[str]] = {}
        for structured in result.structured():
            by_content.setdefault(
                structured.record.content, set()
            ).add(structured.event_id)
        assert all(len(ids) == 1 for ids in by_content.values())

    def test_unicode_and_control_bytes(self, parser_name):
        contents = [
            "naïve café message №1",
            "naïve café message №2",
            "escape \x1b[31m sequence \x07 bell",
            "escape \x1b[32m sequence \x07 bell",
            "tab\tseparated\tvalues here",
        ] * 2
        result = _parse(parser_name, contents)
        assert len(result.assignments) == len(contents)

    def test_deterministic_under_fixed_seed(self, parser_name):
        first = _parse(parser_name, CORPUS * 3)
        second = _parse(parser_name, CORPUS * 3)
        assert first.assignments == second.assignments
        assert [e.template for e in first.events] == [
            e.template for e in second.events
        ]

    def test_template_count_sane(self, parser_name):
        contents = CORPUS * 3
        result = _parse(parser_name, contents)
        # Never more templates than distinct messages, never negative.
        assert 0 <= len(result.events) <= len(set(contents))

    def test_every_assignment_resolvable(self, parser_name):
        result = _parse(parser_name, CORPUS * 2)
        known = {event.event_id for event in result.events}
        for event_id in result.assignments:
            assert (
                event_id in known
                or event_id == ParseResult.OUTLIER_EVENT_ID
            )

    def test_assignments_align_with_records(self, parser_name):
        result = _parse(parser_name, CORPUS)
        assert len(result.assignments) == len(result.records) == len(CORPUS)

    def test_feed_batch_agreement_where_supported(self, parser_name):
        parser = CONFORMANCE_FACTORIES[parser_name]()
        if not hasattr(parser, "tree"):
            pytest.skip(f"{parser_name} has no incremental feed interface")
        records = _records(parser_name, CORPUS * 3)
        batch = parser.parse(records)
        tree = parser.tree()
        fed_labels = [tree.feed(record.tokens) for record in records]
        # Same grouping: records share a batch event id exactly when
        # they share an incremental group id.
        batch_groups = {}
        fed_groups = {}
        for index, (event_id, label) in enumerate(
            zip(batch.assignments, fed_labels)
        ):
            batch_groups.setdefault(event_id, []).append(index)
            fed_groups.setdefault(label, []).append(index)
        assert sorted(batch_groups.values()) == sorted(fed_groups.values())
