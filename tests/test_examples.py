"""Smoke tests: the runnable examples must actually run.

Only the fast examples are executed here (the interactive comparison
script enumerates every parser × dataset and belongs to manual runs).
The instrumented examples (streaming_parse, degraded_stream) leave
telemetry artifacts in the working directory; those tests assert on
the structured files rather than scraping stdout.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"

FAST_EXAMPLES = [
    "quickstart.py",
    "fig1_overview.py",
    "tagged_logging.py",
    "streaming_parse.py",
    "degraded_stream.py",
    "multi_tenant_service.py",
]


def _env_with_src() -> dict:
    """Subprocess environment that can import repro from src/.

    The test runner's own PYTHONPATH is not inherited reliably (pytest
    may be launched with src/ on sys.path only), so build it explicitly.
    """
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # examples write their artifacts to the cwd
        env=_env_with_src(),
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def _run_example(script: str, cwd) -> subprocess.CompletedProcess:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=cwd,
        env=_env_with_src(),
    )
    assert completed.returncode == 0, completed.stderr
    return completed


def test_streaming_parse_leaves_structured_telemetry(tmp_path):
    _run_example("streaming_parse.py", tmp_path)
    samples = json.loads(
        (tmp_path / "streaming_parse.metrics.json").read_text()
    )["samples"]
    assert samples["repro_stream_lines_total"] == 20_000.0
    hits = (
        samples.get('repro_cache_hits_total{kind="exact"}', 0.0)
        + samples.get('repro_cache_hits_total{kind="template"}', 0.0)
    )
    lookups = hits + samples["repro_cache_misses_total"]
    assert hits / lookups > 0.5  # the cache warmed up
    spans = [
        json.loads(line)
        for line in (tmp_path / "streaming_parse.trace.jsonl")
        .read_text()
        .splitlines()
    ]
    names = {span["name"] for span in spans}
    assert {"parse_run", "chunk", "parser_call"} <= names


def test_degraded_stream_leaves_structured_timeline(tmp_path):
    _run_example("degraded_stream.py", tmp_path)
    from repro.observability.events import load_events

    events = load_events(str(tmp_path / "degraded_stream.events.jsonl"))
    steps = [event for event in events if event["kind"] == "ladder_step"]
    assert [step["from"] for step in steps] == ["IPLoM", "SLCT"]
    assert [step["to"] for step in steps] == ["SLCT", "Passthrough"]
    assert all(step["breaches"] for step in steps)
    samples = json.loads(
        (tmp_path / "degraded_stream.metrics.json").read_text()
    )["samples"]
    assert samples["repro_ladder_position"] == 2.0
    assert any(
        name.startswith("repro_budget_breaches_total") for name in samples
    )


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), script.name
        assert "Run:" in text, script.name


def test_fig1_output_matches_paper():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "fig1_overview.py")],
        capture_output=True,
        text=True,
        timeout=120,
        env=_env_with_src(),
    )
    out = completed.stdout
    # The six events of the paper's Fig. 1, verbatim.
    assert "Event2  Receiving block * src: * dest: *" in out
    assert "Event3  PacketResponder * for block * terminating" in out
    assert "Event6  Verification succeeded for *" in out
