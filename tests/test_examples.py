"""Smoke tests: the runnable examples must actually run.

Only the fast examples are executed here (the interactive comparison
script enumerates every parser × dataset and belongs to manual runs).
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"

FAST_EXAMPLES = [
    "quickstart.py",
    "fig1_overview.py",
    "tagged_logging.py",
    "streaming_parse.py",
    "degraded_stream.py",
]


def _env_with_src() -> dict:
    """Subprocess environment that can import repro from src/.

    The test runner's own PYTHONPATH is not inherited reliably (pytest
    may be launched with src/ on sys.path only), so build it explicitly.
    """
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_cleanly(script, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # examples write their artifacts to the cwd
        env=_env_with_src(),
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), script.name
        assert "Run:" in text, script.name


def test_fig1_output_matches_paper():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "fig1_overview.py")],
        capture_output=True,
        text=True,
        timeout=120,
        env=_env_with_src(),
    )
    out = completed.stdout
    # The six events of the paper's Fig. 1, verbatim.
    assert "Event2  Receiving block * src: * dest: *" in out
    assert "Event3  PacketResponder * for block * terminating" in out
    assert "Event6  Verification succeeded for *" in out
