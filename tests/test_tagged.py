"""Tests for event-ID-tagged logging (§V direction 2)."""

import pytest

from repro.common.types import LogRecord, ParseResult
from repro.datasets import generate_dataset, get_dataset_spec
from repro.evaluation import f_measure
from repro.parsers import TaggedLogParser, tag_records


class TestTagRecords:
    def test_prefixes_tag(self):
        records = [LogRecord(content="open file a", truth_event="OPEN")]
        tagged = tag_records(records)
        assert tagged[0].content == "[EV:OPEN] open file a"

    def test_preserves_metadata(self):
        records = [
            LogRecord(
                content="x",
                timestamp="t",
                session_id="s",
                truth_event="E1",
            )
        ]
        tagged = tag_records(records)[0]
        assert tagged.timestamp == "t"
        assert tagged.session_id == "s"
        assert tagged.truth_event == "E1"

    def test_unlabeled_rejected(self):
        with pytest.raises(ValueError):
            tag_records([LogRecord(content="x")])


class TestTaggedLogParser:
    def test_exact_parse_of_tagged_dataset(self):
        dataset = generate_dataset(get_dataset_spec("HDFS"), 400, seed=1)
        tagged = tag_records(dataset.records)
        result = TaggedLogParser().parse(tagged)
        assert f_measure(result.assignments, dataset.truth_assignments) == 1.0

    def test_templates_masked(self):
        records = tag_records(
            [
                LogRecord(content="open file a.txt", truth_event="OPEN"),
                LogRecord(content="open file b.txt", truth_event="OPEN"),
            ]
        )
        result = TaggedLogParser().parse(records)
        assert result.template_of("OPEN") == "open file *"

    def test_untagged_lines_are_outliers(self):
        records = [
            LogRecord(content="[EV:A] tagged line"),
            LogRecord(content="legacy untagged line"),
        ]
        result = TaggedLogParser().parse(records)
        assert result.assignments == ["A", ParseResult.OUTLIER_EVENT_ID]

    def test_tag_stripped_from_template(self):
        records = [LogRecord(content="[EV:A] body text")]
        result = TaggedLogParser().parse(records)
        assert result.template_of("A") == "body text"

    def test_ragged_population_uses_modal_length(self):
        records = [
            LogRecord(content="[EV:A] one two"),
            LogRecord(content="[EV:A] one three"),
            LogRecord(content="[EV:A] one two three four five"),
        ]
        result = TaggedLogParser().parse(records)
        assert result.template_of("A") == "one *"

    def test_round_trip_faster_than_real_parser(self):
        # Not a timing assertion (flaky); structural: single pass, no
        # clustering state, event ids preserved verbatim.
        dataset = generate_dataset(get_dataset_spec("BGL"), 300, seed=2)
        tagged = tag_records(dataset.records)
        result = TaggedLogParser().parse(tagged)
        assert set(result.event_ids) == set(dataset.truth_assignments)
