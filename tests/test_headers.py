"""Tests for per-system log-line header rendering and stripping."""

import pytest

from repro.common.errors import DatasetError
from repro.datasets import generate_dataset, get_dataset_spec
from repro.datasets.headers import HEADER_TOKENS, HeaderFormat


@pytest.mark.parametrize("system", sorted(HEADER_TOKENS))
class TestRoundTrip:
    def test_add_then_strip_recovers_content(self, system):
        spec = get_dataset_spec(system)
        dataset = generate_dataset(spec, 100, seed=1)
        header = HeaderFormat(system=system)
        lines = header.add_headers(dataset.records, seed=1)
        for line, record in zip(lines, dataset.records):
            assert header.strip_header(line) == record.content

    def test_header_token_count_consistent(self, system):
        spec = get_dataset_spec(system)
        dataset = generate_dataset(spec, 50, seed=2)
        header = HeaderFormat(system=system)
        lines = header.add_headers(dataset.records, seed=2)
        for line, record in zip(lines, dataset.records):
            overhead = len(line.split()) - len(record.tokens)
            # Tokens in the header must match the declared count (no
            # header field may contain stray whitespace).
            assert overhead == header.n_tokens

    def test_deterministic(self, system):
        spec = get_dataset_spec(system)
        dataset = generate_dataset(spec, 30, seed=3)
        header = HeaderFormat(system=system)
        assert header.add_headers(dataset.records, seed=9) == (
            header.add_headers(dataset.records, seed=9)
        )


class TestValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(DatasetError):
            HeaderFormat(system="NoSuch")

    def test_headerless_line_rejected(self):
        header = HeaderFormat(system="HDFS")
        with pytest.raises(DatasetError):
            header.strip_header("too short")

    def test_bgl_header_mentions_ras(self):
        spec = get_dataset_spec("BGL")
        dataset = generate_dataset(spec, 5, seed=1)
        lines = HeaderFormat(system="BGL").add_headers(
            dataset.records, seed=1
        )
        assert all(" RAS " in line for line in lines)

    def test_hdfs_header_has_level(self):
        spec = get_dataset_spec("HDFS")
        dataset = generate_dataset(spec, 20, seed=1)
        lines = HeaderFormat(system="HDFS").add_headers(
            dataset.records, seed=1
        )
        assert all((" INFO " in line) or (" WARN " in line) for line in lines)
