"""Tests for the supervision runtime: retries, breakers, fallbacks, screening."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    FallbackExhaustedError,
    ParserTimeoutError,
    ValidationError,
)
from repro.common.types import LogRecord
from repro.parsers import make_parser
from repro.resilience import (
    CircuitBreaker,
    ErrorPolicy,
    ParserSupervisor,
    QuarantineSink,
    RetryPolicy,
    is_clean_content,
    run_with_deadline,
    screen_records,
)
from repro.resilience.faults import FlakyFactory, InjectedFault
from repro.resilience.supervisor import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
)


class FakeClock:
    """Manually advanced monotonic clock for breaker/backoff tests."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


def _iplom_factory():
    return make_parser("IPLoM")


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


def test_retry_policy_schedule_is_deterministic():
    policy = RetryPolicy(attempts=4, base_delay=0.1, backoff=2.0, max_delay=0.3)
    assert [policy.delay(n) for n in (1, 2, 3)] == [0.1, 0.2, 0.3]


def test_retry_policy_rejects_bad_parameters():
    with pytest.raises(ValidationError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValidationError):
        RetryPolicy(backoff=0.5)


# ----------------------------------------------------------------------
# CircuitBreaker state machine
# ----------------------------------------------------------------------


def test_breaker_closed_to_open_to_half_open_to_closed():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # below threshold
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    clock.now += 10.0  # cooldown elapses
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # one probe admitted
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_half_open_probe_failure_reopens_immediately():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5.0, clock=clock)
    for _ in range(3):
        breaker.record_failure()
    clock.now += 5.0
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_failure()  # single probe failure, not threshold-many
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    clock.now += 5.0
    assert breaker.state == CircuitBreaker.HALF_OPEN  # cooldown restarted


def test_breaker_success_resets_failure_count():
    breaker = CircuitBreaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


# ----------------------------------------------------------------------
# run_with_deadline
# ----------------------------------------------------------------------


def test_deadline_passes_through_fast_results(toy_records):
    result = run_with_deadline(
        lambda: make_parser("IPLoM").parse(toy_records), timeout=30.0
    )
    assert result.assignments


def test_deadline_raises_on_overrun():
    import time

    with pytest.raises(ParserTimeoutError):
        run_with_deadline(lambda: time.sleep(5), timeout=0.05)


def test_deadline_propagates_worker_exceptions():
    def boom():
        raise InjectedFault("kaboom")

    with pytest.raises(InjectedFault):
        run_with_deadline(boom, timeout=5.0)


# ----------------------------------------------------------------------
# ParserSupervisor
# ----------------------------------------------------------------------


def test_supervisor_first_parser_succeeds(toy_records):
    supervisor = ParserSupervisor([("IPLoM", _iplom_factory)])
    outcome = supervisor.parse(toy_records)
    assert outcome.parser == "IPLoM"
    assert outcome.report.winner == "IPLoM"
    assert [a.status for a in outcome.report.attempts] == [STATUS_OK]
    assert outcome.result.assignments


def test_supervisor_retries_with_backoff_then_succeeds(toy_records):
    clock = FakeClock()
    flaky = FlakyFactory(_iplom_factory, fail_times=2)
    supervisor = ParserSupervisor(
        [("IPLoM", flaky)],
        retry=RetryPolicy(attempts=3, base_delay=0.1, backoff=2.0),
        sleep=clock.sleep,
        clock=clock,
    )
    outcome = supervisor.parse(toy_records)
    assert [a.status for a in outcome.report.attempts] == [
        STATUS_ERROR,
        STATUS_ERROR,
        STATUS_OK,
    ]
    # Deterministic backoff schedule: 0.1 then 0.2.
    assert clock.sleeps == [0.1, 0.2]


def test_supervisor_falls_back_down_the_chain(toy_records):
    clock = FakeClock()
    always_broken = FlakyFactory(_iplom_factory, fail_times=99, name="LKE")
    supervisor = ParserSupervisor(
        [("LKE", always_broken), ("SLCT", lambda: make_parser("SLCT"))],
        retry=RetryPolicy(attempts=2, base_delay=0.01),
        sleep=clock.sleep,
        clock=clock,
    )
    outcome = supervisor.parse(toy_records)
    assert outcome.parser == "SLCT"
    statuses = [(a.parser, a.status) for a in outcome.report.attempts]
    assert statuses == [
        ("LKE", STATUS_ERROR),
        ("LKE", STATUS_ERROR),
        ("SLCT", STATUS_OK),
    ]
    assert len(outcome.report.failures) == 2


def test_supervisor_timeout_registers_and_falls_back(toy_records):
    stall = FlakyFactory(_iplom_factory, fail_times=99, hang_seconds=2.0)
    supervisor = ParserSupervisor(
        [("slow", stall), ("IPLoM", _iplom_factory)],
        timeout=0.05,
        retry=RetryPolicy(attempts=1),
    )
    outcome = supervisor.parse(toy_records)
    assert outcome.parser == "IPLoM"
    assert [a.status for a in outcome.report.timed_out] == [STATUS_TIMEOUT]


def test_supervisor_exhaustion_raises_with_report(toy_records):
    clock = FakeClock()
    supervisor = ParserSupervisor(
        [("A", FlakyFactory(_iplom_factory, fail_times=99, name="A"))],
        retry=RetryPolicy(attempts=2, base_delay=0.01),
        sleep=clock.sleep,
        clock=clock,
    )
    with pytest.raises(FallbackExhaustedError) as excinfo:
        supervisor.parse(toy_records)
    report = excinfo.value.report
    assert report is not None
    assert report.winner is None
    assert len(report.failures) == 2
    assert "no parser succeeded" in report.describe()


def test_supervisor_breaker_skips_known_bad_parser(toy_records):
    clock = FakeClock()
    broken = FlakyFactory(_iplom_factory, fail_times=99, name="bad")
    supervisor = ParserSupervisor(
        [("bad", broken), ("IPLoM", _iplom_factory)],
        retry=RetryPolicy(attempts=3, base_delay=0.01),
        breaker_threshold=3,
        breaker_reset=60.0,
        sleep=clock.sleep,
        clock=clock,
    )
    first = supervisor.parse(toy_records)
    assert first.parser == "IPLoM"
    assert len([a for a in first.report.attempts if a.parser == "bad"]) == 3
    # Second call: the breaker is open, "bad" is skipped without running.
    second = supervisor.parse(toy_records)
    skipped = second.report.skipped
    assert [a.parser for a in skipped] == ["bad"]
    assert skipped[0].status == STATUS_SKIPPED
    # After the cooldown the probe runs again.
    clock.now += 60.0
    third = supervisor.parse(toy_records)
    assert any(
        a.parser == "bad" and a.status == STATUS_ERROR
        for a in third.report.attempts
    )


def test_supervisor_rejects_empty_chain():
    with pytest.raises(ValidationError):
        ParserSupervisor([])
    with pytest.raises(ValidationError):
        ParserSupervisor([("IPLoM", _iplom_factory)], timeout=0)


# ----------------------------------------------------------------------
# Record screening
# ----------------------------------------------------------------------


def test_is_clean_content_flags_control_chars_and_length():
    assert is_clean_content("plain message") is None
    assert is_clean_content("tab\tand spaces ok") is None
    assert is_clean_content("null\x00byte") == "unprintable"
    assert is_clean_content("ansi \x1b[31m red") == "unprintable"
    assert is_clean_content("lossy � decode") == "unprintable"
    assert is_clean_content("x" * 11, max_len=10) == "oversized"


def test_screen_records_quarantines_with_provenance():
    records = [
        LogRecord(content="good line one"),
        LogRecord(content="bad\x00line"),
        LogRecord(content="good line two"),
    ]
    sink = QuarantineSink()
    policy = ErrorPolicy("quarantine", sink=sink)
    clean = list(screen_records(records, policy, source="<test>"))
    assert [r.content for r in clean] == ["good line one", "good line two"]
    assert policy.skipped == 1
    assert len(sink) == 1
    record = sink.records[0]
    assert record.source == "<test>"
    assert record.line_no == 1
    assert record.byte_offset == -1
    assert record.reason == "unprintable"
    assert "bad" in record.preview


def test_screen_records_raise_mode_names_the_line():
    from repro.common.errors import DatasetError

    records = [LogRecord(content="fine"), LogRecord(content="bad\x07")]
    with pytest.raises(DatasetError, match="<test>:1"):
        list(screen_records(records, "raise", source="<test>"))


def test_quarantine_sink_round_trips_jsonl(tmp_path):
    path = str(tmp_path / "q.jsonl")
    with QuarantineSink(path) as sink:
        list(
            screen_records(
                [LogRecord(content="ok"), LogRecord(content="\x00")],
                "quarantine",
                sink=sink,
            )
        )
    loaded = QuarantineSink.read(path)
    assert len(loaded) == 1
    assert loaded[0].reason == "unprintable"


def test_error_policy_rejects_unknown_mode():
    with pytest.raises(ValidationError):
        ErrorPolicy("explode")


# ----------------------------------------------------------------------
# RetryPolicy jitter bounds
# ----------------------------------------------------------------------


def test_retry_delay_without_rng_stays_deterministic():
    policy = RetryPolicy(attempts=3, base_delay=0.1, backoff=2.0, jitter=0.5)
    # No rng -> the jitter declaration is inert; schedules stay exact.
    assert [policy.delay(n) for n in (1, 2)] == [0.1, 0.2]


def test_retry_delay_jitter_stays_within_declared_bounds():
    from random import Random

    policy = RetryPolicy(
        attempts=5, base_delay=0.1, backoff=2.0, max_delay=10.0, jitter=0.25
    )
    rng = Random(1234)
    for attempt in (1, 2, 3, 4):
        base = policy.base_delay * policy.backoff ** (attempt - 1)
        draws = [policy.delay(attempt, rng) for _ in range(200)]
        assert all(base * 0.75 <= d <= base * 1.25 for d in draws)
        # The spread is actually used, not collapsed to the midpoint.
        assert max(draws) - min(draws) > base * 0.25


def test_retry_delay_jitter_never_exceeds_max_delay():
    from random import Random

    policy = RetryPolicy(
        attempts=3, base_delay=1.0, backoff=4.0, max_delay=1.5, jitter=0.9
    )
    rng = Random(7)
    draws = [policy.delay(3, rng) for _ in range(200)]
    assert all(0.0 <= d <= 1.5 for d in draws)


def test_retry_policy_rejects_bad_jitter():
    with pytest.raises(ValidationError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValidationError):
        RetryPolicy(jitter=-0.1)


# ----------------------------------------------------------------------
# run_with_deadline grace period and thread accounting
# ----------------------------------------------------------------------


def test_deadline_grace_join_reaps_just_late_workers():
    import time

    # Finishes ~50ms past the deadline but well inside the 2s grace:
    # the grace join reaps it and we get the result, not a timeout.
    result = run_with_deadline(
        lambda: (time.sleep(0.1), "late-but-fine")[1],
        timeout=0.05,
        grace=2.0,
    )
    assert result == "late-but-fine"


def test_deadline_flags_leaked_thread_when_grace_expires():
    import time

    with pytest.raises(ParserTimeoutError) as excinfo:
        run_with_deadline(lambda: time.sleep(5), timeout=0.02, grace=0.02)
    assert excinfo.value.leaked_thread is True
    assert "abandoned" in str(excinfo.value)


def test_deadline_zero_grace_abandons_immediately():
    import time

    with pytest.raises(ParserTimeoutError) as excinfo:
        run_with_deadline(lambda: time.sleep(5), timeout=0.02, grace=0.0)
    assert excinfo.value.leaked_thread is True


def test_supervisor_totals_leaked_threads(toy_records):
    stall = FlakyFactory(_iplom_factory, fail_times=99, hang_seconds=5.0)
    supervisor = ParserSupervisor(
        [("slow", stall), ("IPLoM", _iplom_factory)],
        timeout=0.05,
        retry=RetryPolicy(attempts=1),
    )
    outcome = supervisor.parse(toy_records)
    assert outcome.parser == "IPLoM"
    assert outcome.report.leaked_threads == 1
    assert "abandoned worker thread" in outcome.report.describe()
