"""Shared fixtures: small corpora with known template structure."""

from __future__ import annotations

import pytest

from repro.common.types import LogRecord, records_from_contents


@pytest.fixture
def toy_contents() -> list[str]:
    """Three events: open (x3), close (x3), error (x2)."""
    return [
        "open file a.txt by root",
        "open file b.txt by root",
        "open file c.txt by alice",
        "close file d.txt status 0",
        "close file e.txt status 0",
        "close file f.txt status 1",
        "error reading sector 17 on disk sda",
        "error reading sector 99 on disk sdb",
    ]


@pytest.fixture
def toy_truth() -> list[str]:
    return ["open"] * 3 + ["close"] * 3 + ["error"] * 2


@pytest.fixture
def toy_records(toy_contents) -> list[LogRecord]:
    return records_from_contents(toy_contents)


@pytest.fixture
def session_records() -> list[LogRecord]:
    """Two sessions with distinct event mixes, for mining tests."""
    rows = [
        ("s1", "alloc", "alloc block 1"),
        ("s1", "write", "write block 1 bytes 100"),
        ("s1", "write", "write block 1 bytes 200"),
        ("s1", "close", "close block 1"),
        ("s2", "alloc", "alloc block 2"),
        ("s2", "error", "error on block 2 code 7"),
        ("s2", "close", "close block 2"),
    ]
    return [
        LogRecord(content=content, session_id=session, truth_event=event)
        for session, event, content in rows
    ]
