"""Setup shim for environments without the ``wheel`` package.

The canonical metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on offline machines whose
setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
