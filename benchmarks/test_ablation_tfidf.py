"""Ablation A4 — the TF-IDF step of the anomaly-detection pipeline.

Xu et al. weight the event count matrix with TF-IDF before PCA.  This
ablation reruns the ground-truth pipeline with and without it:

* with TF-IDF, ubiquitous-event columns are zeroed — rare-event
  anomalies stand out (high precision), but count-only anomalies
  (under-replication) become invisible: the 66% detection ceiling of
  Table III;
* without TF-IDF, raw counts dominate and the normal space absorbs the
  wrong directions, degrading precision and/or recall.
"""

from repro.datasets import generate_hdfs_sessions
from repro.mining.anomaly import detect_anomalies
from repro.evaluation.mining_impact import score_detection
from repro.parsers import OracleParser

from .conftest import emit

N_BLOCKS = 5_000


def _run():
    dataset = generate_hdfs_sessions(N_BLOCKS, seed=11)
    parsed = OracleParser().parse(dataset.records)
    rows = {}
    for label, use_tf_idf in [("with-tfidf", True), ("without-tfidf", False)]:
        detection = detect_anomalies(parsed, use_tf_idf=use_tf_idf)
        reported, detected, false_alarms = score_detection(
            detection.flagged_sessions, dataset.labels
        )
        subtle = {
            block
            for block, scenario in dataset.scenarios.items()
            if scenario == "subtle"
        }
        rows[label] = {
            "reported": reported,
            "detected": detected,
            "false_alarms": false_alarms,
            "subtle_detected": len(detection.flagged_sessions & subtle),
            "n_subtle": len(subtle),
            "n_anomalies": len(dataset.anomaly_blocks),
        }
    return rows


def test_ablation_tfidf(once):
    rows = once(_run)
    lines = [
        f"{label:15s} reported={row['reported']:4d} "
        f"detected={row['detected']:4d}/{row['n_anomalies']} "
        f"false_alarms={row['false_alarms']:4d} "
        f"subtle={row['subtle_detected']}/{row['n_subtle']}"
        for label, row in rows.items()
    ]
    emit("ablation_tfidf", "\n".join(lines))

    with_tfidf = rows["with-tfidf"]
    without = rows["without-tfidf"]

    # TF-IDF: clean precision, but zero subtle (count-only) detections —
    # the mechanism behind the paper's 66% ground-truth ceiling.
    assert with_tfidf["subtle_detected"] == 0
    assert with_tfidf["false_alarms"] <= with_tfidf["reported"] * 0.1
    assert with_tfidf["detected"] > 0

    # Dropping TF-IDF changes the operating point substantially.
    assert (
        without["false_alarms"] != with_tfidf["false_alarms"]
        or without["detected"] != with_tfidf["detected"]
    )
