"""Table I — summary of the five log datasets.

Regenerates each synthetic dataset at a laptop-scale slice (the paper's
full sizes are matched by the spec's ``reference_size`` but generating
16.4M lines inside a benchmark serves no purpose) and reports the
columns of Table I: #Logs (reference scale), token-length range, and
#Events — the latter two measured from generated data, not just quoted.
"""

from repro.datasets import generate_dataset, iter_dataset_specs
from repro.evaluation.reports import render_table1

from .conftest import emit

#: Lines generated per dataset for the measured columns.
SLICE = 20_000


def _build_rows():
    rows = []
    for spec in iter_dataset_specs():
        size = min(SLICE, spec.reference_size)
        dataset = generate_dataset(spec, size, seed=1)
        lengths = [len(record.tokens) for record in dataset.records]
        rows.append(
            (
                spec,
                spec.reference_size,
                (min(lengths), max(lengths)),
                len(dataset.observed_event_ids()),
            )
        )
    return rows


def test_table1_dataset_summary(once):
    rows = once(_build_rows)
    text = render_table1(rows)
    emit("table1_datasets", text)
    # The paper's event counts must be exactly matched by the banks.
    paper_events = {"BGL": 376, "HPC": 105, "Proxifier": 8, "HDFS": 29,
                    "Zookeeper": 80}
    for spec, _n, _lengths, observed_events in rows:
        assert observed_events == paper_events[spec.name]
    # And the reference sizes must sum to the paper's 16,441,570 lines.
    assert sum(spec.reference_size for spec, *_ in rows) == 16_441_570
