"""Table III — anomaly detection with different log parsers (RQ3,
Findings 5 & 6).

Reruns Xu et al.'s PCA anomaly detection over simulated HDFS block
sessions, swapping the log parsing step between SLCT, LogSig, IPLoM,
Drain (the modern baseline of the expanded comparison — no paper row)
and the ground-truth (source-code-based) parser.  LKE is excluded
exactly as in §IV-D ("it could not handle this large amount of data in
reasonable time").

Expected shape: the ground truth detects roughly two thirds of the true
anomalies (TF-IDF makes count-only anomalies invisible — the 66%
ceiling); IPLoM and LogSig track it closely with few false alarms;
SLCT, despite a comparable F-measure, degrades mining by an order of
magnitude (false-alarm explosion plus lost detections).
"""

from repro.datasets import generate_hdfs_sessions
from repro.evaluation.mining_impact import (
    evaluate_mining_impact,
    table3_parser_factory,
)
from repro.evaluation.reports import render_table3

from .conftest import emit

#: Block sessions to simulate (~15 log lines per block).  The paper uses
#: 575,061 blocks / 11.2M lines; the shape is stable from a few thousand
#: blocks on.
N_BLOCKS = 8_000

PAPER_ROWS = """\
Paper (16,838 anomalies, 575,061 blocks):
  SLCT          acc 0.83  reported 18,450  detected 10,935 (64%)  FA 7,515 (40%)
  LogSig        acc 0.87  reported 11,091  detected 10,678 (63%)  FA 413 (3.7%)
  IPLoM         acc 0.99  reported 10,998  detected 10,720 (63%)  FA 278 (2.5%)
  Ground truth  acc 1.00  reported 11,473  detected 11,195 (66%)  FA 278 (2.4%)"""


def _run_table3():
    dataset = generate_hdfs_sessions(N_BLOCKS, seed=11)
    rows = []
    for name in ["SLCT", "LogSig", "IPLoM", "Drain", "GroundTruth"]:
        parser = table3_parser_factory(name, seed=2)
        rows.append(evaluate_mining_impact(parser, dataset))
    return dataset, rows


def test_table3_anomaly_detection(once):
    dataset, rows = once(_run_table3)
    by_name = {row.parser: row for row in rows}
    text = (
        f"Measured ({len(dataset.anomaly_blocks)} anomalies, "
        f"{len(dataset.labels)} blocks, {len(dataset)} lines):\n"
        + render_table3(rows)
        + "\n\n"
        + PAPER_ROWS
    )
    emit("table3_mining", text)

    ground_truth = by_name["GroundTruth"]
    iplom = by_name["IPLoM"]
    logsig = by_name["LogSig"]
    slct = by_name["SLCT"]

    # Ground truth: perfect parse, majority-but-not-all detection, few
    # false alarms (the PCA model's own boundary).
    assert ground_truth.parsing_accuracy == 1.0
    assert 0.4 < ground_truth.detection_rate < 0.8
    assert ground_truth.false_alarm_rate < 0.1

    # IPLoM ≈ ground truth (Finding 5's positive side).
    assert iplom.parsing_accuracy > 0.95
    assert abs(iplom.detected - ground_truth.detected) <= max(
        20, ground_truth.detected // 4
    )
    assert iplom.false_alarm_rate < 0.1

    # LogSig close behind with a small false-alarm rate.
    assert logsig.detection_rate > 0.35
    assert logsig.false_alarm_rate < 0.15

    # Drain (expanded comparison): accurate parse that preserves the
    # mining result, like IPLoM — the Finding-5 pattern holds for a
    # parser the paper never saw.
    drain = by_name["Drain"]
    assert drain.parsing_accuracy > 0.9
    assert abs(drain.detected - ground_truth.detected) <= max(
        20, ground_truth.detected // 4
    )
    assert drain.false_alarm_rate < 0.1

    # SLCT: comparable F-measure, order-of-magnitude worse mining
    # (Finding 6) — far more false alarms than IPLoM/LogSig and/or a
    # collapse in detections.
    assert slct.parsing_accuracy > 0.75
    degraded = (
        slct.false_alarms > 10 * max(iplom.false_alarms, 1)
        or slct.detected < ground_truth.detected / 2
    )
    assert degraded
