"""Streaming-engine throughput benchmark with a machine-readable artifact.

One instrumented HDFS stream through :class:`StreamingParser` produces
``benchmarks/results/BENCH_stream.json`` — lines/s, cache hit rate,
and flush-latency quantiles, all read back from the telemetry registry
(the same source of truth the CLI reports from), so the perf artifact
and the human summary can never disagree.  CI uploads the JSON so
throughput is trendable across commits.
"""

import json
import os

from repro.datasets import generate_dataset, get_dataset_spec
from repro.observability import Telemetry, summary_from_registry
from repro.parsers import make_parser
from repro.streaming import ParseSession, StreamingParser

from .conftest import RESULTS_DIR, emit

LINES = 50_000
FLUSH_SIZE = 2_048
QUANTILES = (0.5, 0.9, 0.99)


def _stream_run():
    telemetry = Telemetry.create(trace_id="bench")
    dataset = generate_dataset(get_dataset_spec("HDFS"), LINES, seed=1)
    engine = StreamingParser(
        lambda: make_parser("SLCT"),
        flush_size=FLUSH_SIZE,
        cache_capacity=4096,
        telemetry=telemetry,
    )
    session = ParseSession(engine)
    session.consume(dataset.records)
    session.finalize()
    return telemetry, session


def test_bench_stream_throughput(once):
    telemetry, session = once(_stream_run)
    metrics = telemetry.metrics
    lines = metrics.value("repro_stream_lines_total")
    elapsed = metrics.value("repro_run_elapsed_seconds")
    exact = metrics.value("repro_cache_hits_total", kind="exact")
    template = metrics.value("repro_cache_hits_total", kind="template")
    misses = metrics.value("repro_cache_misses_total")
    lookups = exact + template + misses
    flush_hist = metrics.get("repro_stream_flush_seconds")
    payload = {
        "benchmark": "stream",
        "dataset": "HDFS",
        "parser": "SLCT",
        "lines": int(lines),
        "flush_size": FLUSH_SIZE,
        "elapsed_seconds": round(elapsed, 4),
        "lines_per_second": round(lines / elapsed) if elapsed > 0 else 0,
        "cache_hit_rate": round(
            (exact + template) / lookups if lookups else 0.0, 4
        ),
        "flushes": int(metrics.value("repro_stream_flushes_total")),
        "flush_latency_seconds": {
            f"p{int(q * 100)}": round(flush_hist.quantile(q), 6)
            for q in QUANTILES
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    artifact = os.path.join(RESULTS_DIR, "BENCH_stream.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit("BENCH_stream", summary_from_registry(metrics))

    assert payload["lines"] == LINES
    assert payload["lines_per_second"] > 0
    assert 0.0 < payload["cache_hit_rate"] <= 1.0
    # Quantiles are ordered by construction of the bucket CDF.
    latencies = payload["flush_latency_seconds"]
    assert latencies["p50"] <= latencies["p90"] <= latencies["p99"]
