"""Ablation A5 (§V direction 2) — event-ID-tagged logging vs. parsing.

The paper's second proposed direction: record the event id in the log
message in the first place, making statistical parsing unnecessary.
This ablation quantifies the payoff on an HDFS slice: the tagged parser
is exact by construction and a single linear pass, where the best
statistical parser is merely very good.
"""

import time

from repro.datasets import generate_dataset, get_dataset_spec
from repro.evaluation.fmeasure import f_measure
from repro.parsers import Iplom, TaggedLogParser, tag_records

from .conftest import emit

LINES = 50_000


def _run():
    dataset = generate_dataset(get_dataset_spec("HDFS"), LINES, seed=1)
    truth = dataset.truth_assignments
    tagged_records = tag_records(dataset.records)

    results = {}
    for label, parser, records in [
        ("IPLoM (untagged)", Iplom(), dataset.records),
        ("Tagged", TaggedLogParser(), tagged_records),
    ]:
        started = time.perf_counter()
        parsed = parser.parse(records)
        elapsed = time.perf_counter() - started
        results[label] = (
            elapsed,
            f_measure(parsed.assignments, truth),
            len(parsed.events),
        )
    return results


def test_ablation_tagged_logging(once):
    results = once(_run)
    lines = [
        f"{label:18s} time={elapsed:6.2f}s f_measure={score:.4f} "
        f"events={events}"
        for label, (elapsed, score, events) in results.items()
    ]
    emit("ablation_tagged", "\n".join(lines))

    _iplom_time, iplom_score, _ = results["IPLoM (untagged)"]
    tagged_time, tagged_score, tagged_events = results["Tagged"]

    # Tagged parsing is exact and recovers the true event inventory.
    assert tagged_score == 1.0
    assert tagged_events == 29
    # Statistical parsing is good but not exact on this data.
    assert iplom_score < 1.0
    # And the tagged pass is fast in absolute terms (linear scan).
    assert tagged_time < 5.0
