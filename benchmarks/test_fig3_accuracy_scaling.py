"""Fig. 3 — parsing accuracy vs. dataset size with parameters tuned on
the 2k sample (RQ2, Finding 4).

The paper tunes each parser on the 2k sample and then applies those
parameters unchanged to larger slices.  Expected shape: IPLoM performs
consistently in most cases; SLCT is consistent except on HPC; LKE is
volatile; LogSig holds on few-event datasets but moves on event-rich
ones (BGL, HPC) — so tuning on samples does not transfer for the
clustering-based parsers.
"""

import statistics

from repro.datasets import generate_dataset, get_dataset_spec, sample_records
from repro.evaluation.accuracy import tuned_parser_factory
from repro.evaluation.fmeasure import f_measure, singletonize_outliers
from repro.evaluation.plots import ascii_plot
from repro.evaluation.reports import render_series

from .conftest import emit

SIZES = [400, 2_000, 10_000]
DATASETS = ["BGL", "HPC", "HDFS", "Zookeeper", "Proxifier"]
#: LKE joins only on sizes its quadratic clustering can stomach.
LKE_SIZES = [400, 2_000]


def _accuracy_at(parser_name, dataset_name, size):
    spec = get_dataset_spec(dataset_name)
    generated = generate_dataset(spec, max(3 * size, 4000), seed=1)
    sampled = sample_records(generated.records, size, seed=1)
    truth = [record.truth_event or "" for record in sampled]
    parser = tuned_parser_factory(parser_name, dataset_name, seed=1)
    parsed = parser.parse(sampled)
    return f_measure(singletonize_outliers(parsed.assignments), truth)


def _run_all():
    series = {}
    for dataset in DATASETS:
        for parser in ["SLCT", "IPLoM", "LogSig", "LKE"]:
            sizes = LKE_SIZES if parser == "LKE" else SIZES
            series[(parser, dataset)] = [
                (size, _accuracy_at(parser, dataset, size))
                for size in sizes
            ]
    return series


def _spread(points):
    return max(score for _s, score in points) - min(
        score for _s, score in points
    )


def test_fig3_accuracy_across_sizes(once):
    series = once(_run_all)
    blocks = [
        render_series(f"{parser} on {dataset}", points)
        for (parser, dataset), points in sorted(series.items())
    ]
    for dataset in DATASETS:
        blocks.append(
            ascii_plot(
                {
                    parser: series[(parser, dataset)]
                    for parser in ["SLCT", "IPLoM", "LogSig", "LKE"]
                },
                log_y=False,
                title=f"Fig.3 {dataset}: F-measure vs lines (log-x)",
            )
        )
    emit("fig3_accuracy_scaling", "\n\n".join(blocks))

    # IPLoM performs consistently in most cases (small spread).
    iplom_spreads = [
        _spread(series[("IPLoM", dataset)]) for dataset in DATASETS
    ]
    assert statistics.median(iplom_spreads) < 0.1

    # The clustering-based parsers transfer worse than IPLoM overall:
    # their worst-case spread across datasets exceeds IPLoM's.
    def worst(parser):
        return max(_spread(series[(parser, d)]) for d in DATASETS)

    assert max(worst("LogSig"), worst("LKE")) > max(iplom_spreads) - 0.02

    # Every measured score is a valid F-measure.
    for points in series.values():
        for _size, score in points:
            assert 0.0 <= score <= 1.0
