"""Ablation A2 (Finding 6) — parse errors on critical vs. common events.

Starting from a perfect (ground-truth) parse of the HDFS sessions, we
inject controlled errors and rerun the PCA pipeline:

* fragmenting 50% of the rare transfer events (E13/E15) costs a
  *per-mille* of F-measure yet produces an order-of-magnitude
  degradation (false-alarm explosion / halved detection);
* merging 50% of a ubiquitous event (E3) costs ~7 points of F-measure
  and barely moves the mining result.

This is the paper's "4% errors on critical events can cause an order of
magnitude performance degradation", separated from any specific parser.
"""

from repro.datasets import generate_hdfs_sessions
from repro.evaluation.mining_impact import (
    corrupt_assignments,
    impact_from_parse,
)
from repro.parsers import OracleParser

from .conftest import emit

N_BLOCKS = 4_000


def _run():
    dataset = generate_hdfs_sessions(N_BLOCKS, seed=3)
    parsed = OracleParser().parse(dataset.records)
    rows = {"clean": impact_from_parse("clean", parsed, dataset)}
    experiments = {
        "critical-fragment": (["E13", "E15"], "fragment", 0.5),
        "critical-merge": (["E13", "E15"], "merge", 0.5),
        "common-merge": (["E3"], "merge", 0.5),
    }
    for label, (targets, mode, rate) in experiments.items():
        corrupted = corrupt_assignments(
            parsed, rate, targets, seed=4, mode=mode
        )
        rows[label] = impact_from_parse(label, corrupted, dataset)
    return rows


def test_ablation_critical_events(once):
    rows = once(_run)
    lines = [
        f"{label:18s} acc={row.parsing_accuracy:.4f} "
        f"reported={row.reported:4d} detected={row.detected:4d} "
        f"false_alarms={row.false_alarms:4d}"
        for label, row in rows.items()
    ]
    emit("ablation_critical_events", "\n".join(lines))

    clean = rows["clean"]
    critical = rows["critical-fragment"]
    common = rows["common-merge"]

    # The critical corruption is nearly invisible to F-measure...
    assert critical.parsing_accuracy > 0.995
    # ...but wrecks mining by an order of magnitude.
    assert (
        critical.false_alarms > 10 * max(clean.false_alarms, 1)
        or critical.detected < clean.detected / 2
    )

    # The common-event corruption costs far more F-measure...
    assert common.parsing_accuracy < critical.parsing_accuracy - 0.03
    # ...yet mining barely moves.
    assert abs(common.detected - clean.detected) <= max(
        3, clean.detected // 10
    )
    assert common.false_alarms <= clean.false_alarms + 3
