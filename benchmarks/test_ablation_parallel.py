"""Ablation A3 (§V "Distributed Log Parsing") — chunked parallel parsing.

The paper's discussion proposes parallelization as the way out of
Finding 3 — specifically for the *slow clustering-based* parsers
("Clustering algorithms which could be parallelized should be
considered").  This ablation measures the simplest design — chunk,
parse independently, merge equal templates — for LogSig, whose local
search is expensive enough that worker processes pay for themselves,
and contrasts it with IPLoM, which parses so fast that process overhead
eats any gain (so parallelizing it is pointless, also a finding).
"""

import os
import time

from repro.datasets import generate_dataset, get_dataset_spec
from repro.evaluation.fmeasure import f_measure
from repro.parsers import ChunkedParallelParser, Iplom, LogSig

from .conftest import emit

LINES = 60_000
CHUNK = 7_500


def _logsig_factory():
    return LogSig(groups=29, seed=1)


def _run():
    dataset = generate_dataset(get_dataset_spec("HDFS"), LINES, seed=1)
    truth = dataset.truth_assignments
    results = {}

    def measure(label, parser):
        started = time.perf_counter()
        parsed = parser.parse(dataset.records)
        elapsed = time.perf_counter() - started
        results[label] = (
            elapsed,
            f_measure(parsed.assignments, truth),
            len(parsed.events),
        )

    measure("LogSig whole", LogSig(groups=29, seed=1))
    for workers in (1, 4):
        measure(
            f"LogSig chunked x{workers}",
            ChunkedParallelParser(
                _logsig_factory, chunk_size=CHUNK, workers=workers
            ),
        )
    measure("IPLoM whole", Iplom())
    measure(
        "IPLoM chunked x4",
        ChunkedParallelParser(Iplom, chunk_size=CHUNK, workers=4),
    )
    return results


def test_ablation_parallel_parsing(once):
    results = once(_run)
    lines = [
        f"{label:18s} time={elapsed:7.2f}s f_measure={score:.3f} "
        f"events={events}"
        for label, (elapsed, score, events) in results.items()
    ]
    emit("ablation_parallel", "\n".join(lines))

    whole_time, whole_score, _ = results["LogSig whole"]
    seq_time, seq_score, _ = results["LogSig chunked x1"]
    par_time, par_score, _ = results["LogSig chunked x4"]

    # Four workers must beat one worker on the expensive parser — but a
    # speedup is only physically observable with multiple cores.
    cores = len(os.sched_getaffinity(0))
    if cores >= 4:
        assert par_time < seq_time * 0.8
    elif cores == 1:
        # Single-core host: require only that the process pool does not
        # blow the runtime up (bounded overhead).
        assert par_time < seq_time * 2.0

    # Chunking must not destroy accuracy.
    assert par_score > whole_score - 0.15
    assert par_score == seq_score  # same chunks, same seeds, same merge

    # IPLoM is too fast for multiprocessing to pay off at this scale —
    # the overhead statement, not a speedup statement.
    iplom_whole, _, _ = results["IPLoM whole"]
    assert iplom_whole < results["LogSig whole"][0]
