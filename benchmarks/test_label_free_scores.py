"""Label-free parser scores — cohesion/separation with no ground truth.

The paper's Table II needs labeled samples; this extension scores every
non-passthrough registry parser on the same five datasets using only
the parse itself: cohesion (members of a cluster look alike) and
separation (templates of different clusters look different), combined
by harmonic mean.  Useful for exactly the situation the paper warns
about — picking a parser for a log source that has no ground truth.

Expected shape: the metric rewards fragmentation — SLCT and LKE earn
inflated cohesion from their many near-singleton clusters — so it does
not reproduce the labeled F-measure ordering.  What it does flag
reliably is under-segmentation: LogSig's merged clusters trail every
other parser (e.g. HDFS scores ~0.11 despite a labeled F-measure of
~0.9), and Drain leads the balanced parsers on every dataset.
"""

import statistics

from repro.evaluation.cohesion import evaluate_label_free

from .conftest import emit

PARSERS = ["SLCT", "IPLoM", "LKE", "LogSig", "Drain"]
DATASETS = ["BGL", "HPC", "HDFS", "Zookeeper", "Proxifier"]


def _run_scores():
    scores = []
    for parser in PARSERS:
        # LKE's O(n²) clustering gets the smaller sample, as in the
        # paper's own Table II protocol.
        sample_size = 300 if parser == "LKE" else 1000
        for dataset in DATASETS:
            scores.append(
                evaluate_label_free(
                    parser, dataset, sample_size=sample_size, seed=1
                )
            )
    return scores


def test_label_free_scores(once):
    scores = once(_run_scores)
    header = (
        f"{'parser':8s} {'dataset':10s} {'lines':>6s} {'clusters':>9s} "
        f"{'cohesion':>9s} {'separation':>11s} {'score':>7s}"
    )
    rows = "\n".join(
        f"{s.parser:8s} {s.dataset:10s} {s.lines:6d} {s.clusters:9d} "
        f"{s.cohesion:9.3f} {s.separation:11.3f} {s.score:7.3f}"
        for s in scores
    )
    emit(
        "label_free_scores",
        "Label-free cohesion/separation (no ground truth consulted):\n"
        f"{header}\n{rows}",
    )

    by_parser = {
        parser: [s for s in scores if s.parser == parser]
        for parser in PARSERS
    }

    def average(parser):
        return statistics.fmean(s.score for s in by_parser[parser])

    # Every cell is well-formed: bounded scores, no empty parses.
    for s in scores:
        assert 0.0 <= s.cohesion <= 1.0
        assert 0.0 <= s.separation <= 1.0
        assert s.clusters >= 1

    # Under-segmentation is what the label-free score catches: LogSig's
    # merged clusters trail every other parser without any labels being
    # consulted.
    assert average("LogSig") == min(average(p) for p in PARSERS)

    # Drain leads the balanced (neither over- nor under-segmenting)
    # parsers: ahead of LogSig on every dataset, ahead of IPLoM on
    # average (IPLoM edges it only on HDFS).
    drain = {s.dataset: s.score for s in by_parser["Drain"]}
    for s in by_parser["LogSig"]:
        assert drain[s.dataset] > s.score
    assert average("Drain") > average("IPLoM")
