"""Shared benchmark helpers.

Each benchmark regenerates one table or figure of the paper.  Results
are printed and also written to ``benchmarks/results/<name>.txt`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced
artifacts on disk next to the timing table.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a reproduced artifact and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (these are experiment
    harnesses, not microbenchmarks — repetition would multiply minutes).
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
