"""Multi-tenant service throughput: thread vs process isolation.

Feeds the same tenant-tagged stream through the ingestion service in
both isolation modes and writes
``benchmarks/results/BENCH_service.json`` — per-mode lines/s plus the
process mode's restart count (which must be zero on a calm run).  The
point of the artifact is the *ratio*: process isolation buys physical
failure domains for a queue-hop tax that this benchmark makes
trendable across commits.
"""

import functools
import json
import os
import time

from repro.parsers import make_parser
from repro.service import IngestionService, replay_lines

from .conftest import RESULTS_DIR, emit

TENANTS = 4
LINES_PER_TENANT = 5_000


def _stream():
    lines = []
    for i in range(TENANTS * LINES_PER_TENANT):
        tenant = f"tenant{i % TENANTS}"
        lines.append(
            f"{tenant}\tConnection from 10.0.{i % 200}.{i % 7} "
            f"port {3000 + i % 500} established"
        )
    return lines


def _run_mode(data_dir, lines, isolation):
    kwargs = {}
    if isolation == "process":
        kwargs["worker_kwargs"] = dict(checkpoint_every=1_000)
    service = IngestionService(
        data_dir,
        functools.partial(make_parser, "Drain"),
        parser_name="Drain",
        flush_size=512,
        isolation=isolation,
        **kwargs,
    )
    start = time.monotonic()
    replay_lines(service, lines)
    summary = service.drain()
    elapsed = time.monotonic() - start
    restarts = sum(
        tenant.get("restarts", 0) for tenant in summary["tenants"].values()
    )
    total = sum(tenant["lines"] for tenant in summary["tenants"].values())
    return {
        "elapsed_seconds": round(elapsed, 4),
        "lines_per_second": round(total / elapsed) if elapsed > 0 else 0,
        "lines": total,
        "restarts": restarts,
    }


def _service_run(tmp_dir):
    lines = _stream()
    return {
        mode: _run_mode(os.path.join(tmp_dir, mode), lines, mode)
        for mode in ("thread", "process")
    }


def test_bench_service_isolation(once, tmp_path):
    modes = once(_service_run, str(tmp_path))
    payload = {
        "benchmark": "service",
        "parser": "Drain",
        "tenants": TENANTS,
        "lines_per_tenant": LINES_PER_TENANT,
        "modes": modes,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    artifact = os.path.join(RESULTS_DIR, "BENCH_service.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(
        "BENCH_service",
        "\n".join(
            f"{mode}: {stats['lines_per_second']:,} lines/s "
            f"({stats['lines']} lines, {stats['restarts']} restarts)"
            for mode, stats in modes.items()
        ),
    )

    for mode, stats in modes.items():
        assert stats["lines"] == TENANTS * LINES_PER_TENANT, mode
        assert stats["restarts"] == 0, mode
        assert stats["lines_per_second"] > 0, mode
