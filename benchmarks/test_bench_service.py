"""Multi-tenant service throughput: thread vs process isolation.

Feeds the same tenant-tagged stream through the ingestion service in
both isolation modes and writes
``benchmarks/results/BENCH_service.json`` — per-mode lines/s plus the
process mode's restart count (which must be zero on a calm run).  The
point of the artifact is the *ratio*: process isolation buys physical
failure domains for a queue-hop tax that this benchmark makes
trendable across commits.

Each mode also runs a **scraped** variant: the live telemetry endpoint
enabled with a background client hammering ``/metrics`` for the whole
replay.  The scrape tax must stay within the perf gate's tolerance of
the unscraped run — observability that slows the hot path by more
than a regression-gate trip is observability nobody will leave on.
"""

import functools
import json
import os
import threading
import time
import urllib.request

from repro.observability import Telemetry, TelemetryServer
from repro.parsers import make_parser
from repro.service import IngestionService, replay_lines

from .conftest import RESULTS_DIR, emit
from .perf_gate import DEFAULT_TOLERANCE

TENANTS = 4
LINES_PER_TENANT = 5_000
#: Pause between scrapes.  10 Hz is still two orders of magnitude
#: hotter than a production Prometheus interval — a gate that passes
#: here has headroom to spare at any real cadence.
SCRAPE_PAUSE = 0.1


def _stream():
    lines = []
    for i in range(TENANTS * LINES_PER_TENANT):
        tenant = f"tenant{i % TENANTS}"
        lines.append(
            f"{tenant}\tConnection from 10.0.{i % 200}.{i % 7} "
            f"port {3000 + i % 500} established"
        )
    return lines


def _run_mode(data_dir, lines, isolation, *, telemetry=False,
              scrape=False):
    kwargs = {}
    if isolation == "process":
        kwargs["worker_kwargs"] = dict(checkpoint_every=1_000)
    handle = (
        Telemetry.create(trace_id="bench")
        if telemetry or scrape
        else None
    )
    service = IngestionService(
        data_dir,
        functools.partial(make_parser, "Drain"),
        parser_name="Drain",
        flush_size=512,
        isolation=isolation,
        telemetry=handle,
        **kwargs,
    )
    scrapes = 0
    server = None
    stop = threading.Event()
    scraper = None
    if scrape:
        server = TelemetryServer(handle.metrics)
        server.start()

        def _hammer():
            nonlocal scrapes
            url = f"{server.url}/metrics"
            while not stop.is_set():
                with urllib.request.urlopen(url, timeout=5) as response:
                    response.read()
                scrapes += 1
                time.sleep(SCRAPE_PAUSE)

        scraper = threading.Thread(target=_hammer, daemon=True)
        scraper.start()
    start = time.monotonic()
    try:
        replay_lines(service, lines)
        summary = service.drain()
        elapsed = time.monotonic() - start
    finally:
        stop.set()
        if scraper is not None:
            scraper.join(timeout=10)
        if server is not None:
            server.stop()
    restarts = sum(
        tenant.get("restarts", 0) for tenant in summary["tenants"].values()
    )
    total = sum(tenant["lines"] for tenant in summary["tenants"].values())
    stats = {
        "elapsed_seconds": round(elapsed, 4),
        "lines_per_second": round(total / elapsed) if elapsed > 0 else 0,
        "lines": total,
        "restarts": restarts,
    }
    if scrape:
        stats["scrapes"] = scrapes
    return stats


_MEMO: dict = {}


def _service_run(tmp_dir):
    # The two tests below share one measurement: these are
    # multi-minute experiment harnesses, so the second test reuses the
    # first's result instead of re-running the whole matrix.
    if "modes" in _MEMO:
        return _MEMO["modes"]
    modes = {}
    for mode in ("thread", "process"):
        lines = _stream()
        modes[mode] = _run_mode(
            os.path.join(tmp_dir, mode), lines, mode
        )
        modes[f"{mode}_telemetry"] = _run_mode(
            os.path.join(tmp_dir, f"{mode}_telemetry"), lines, mode,
            telemetry=True,
        )
        modes[f"{mode}_scraped"] = _run_mode(
            os.path.join(tmp_dir, f"{mode}_scraped"), lines, mode,
            telemetry=True, scrape=True,
        )
    _MEMO["modes"] = modes
    return modes


def test_bench_service_isolation(once, tmp_path):
    modes = once(_service_run, str(tmp_path))
    payload = {
        "benchmark": "service",
        "parser": "Drain",
        "tenants": TENANTS,
        "lines_per_tenant": LINES_PER_TENANT,
        "scrape_tolerance": DEFAULT_TOLERANCE,
        "modes": modes,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    artifact = os.path.join(RESULTS_DIR, "BENCH_service.json")
    with open(artifact, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit(
        "BENCH_service",
        "\n".join(
            f"{mode}: {stats['lines_per_second']:,} lines/s "
            f"({stats['lines']} lines, {stats['restarts']} restarts"
            + (
                f", {stats['scrapes']} scrapes)"
                if "scrapes" in stats
                else ")"
            )
            for mode, stats in modes.items()
        ),
    )

    for mode, stats in modes.items():
        assert stats["lines"] == TENANTS * LINES_PER_TENANT, mode
        assert stats["restarts"] == 0, mode
        assert stats["lines_per_second"] > 0, mode


def test_bench_scrape_overhead_within_gate_tolerance(once, tmp_path):
    """The scrape tax proper: telemetry-enabled runs with and without
    a client hammering ``/metrics``.  Telemetry instrumentation itself
    has its own (recorded, ungated) cost — comparing scraped against
    the *plain* run would blame the endpoint for the histograms."""
    modes = once(_service_run, str(tmp_path))
    for mode in ("thread", "process"):
        instrumented = modes[f"{mode}_telemetry"]["lines_per_second"]
        scraped = modes[f"{mode}_scraped"]["lines_per_second"]
        assert modes[f"{mode}_scraped"]["scrapes"] > 0, (
            f"{mode}: the scraper never completed a request"
        )
        floor = instrumented * (1.0 - DEFAULT_TOLERANCE)
        assert scraped >= floor, (
            f"{mode}: scraping cost more than the perf-gate tolerance "
            f"({scraped:,} lines/s vs floor {floor:,.0f})"
        )
