"""Table II — parsing accuracy on 2k samples, raw vs. preprocessed
(RQ1, Findings 1 & 2), expanded with the Drain baseline.

Methodology follows §IV-B: 2k random samples per dataset, parameters
tuned per dataset, randomized parsers averaged over several runs.
Deviations from the paper's protocol, for wall-clock sanity: LKE runs
on 500-line samples (its O(n²) clustering is the subject of Finding 3,
not of this table) and the randomized parsers average 3 runs instead
of 10.  Drain (He et al., ICWS 2017) postdates the paper, so its row
has no Table II reference values — it rides along as the modern
fixed-depth-tree baseline in the expanded comparison.

Expected shape (paper values in the printed table): overall accuracy
high; IPLoM best of the paper's four (≈0.88 average); LKE collapses on
HPC; preprocessing helps SLCT/LKE/LogSig but not IPLoM (nor Drain).
"""

import statistics

from repro.evaluation.accuracy import evaluate_accuracy
from repro.evaluation.reports import render_table2

from .conftest import emit

#: The four parsers evaluated by the paper itself.
PARSERS_2016 = ["SLCT", "IPLoM", "LKE", "LogSig"]
PARSERS = [*PARSERS_2016, "Drain"]
DATASETS = ["BGL", "HPC", "HDFS", "Zookeeper", "Proxifier"]

#: Paper's Table II values (raw, preprocessed) for the printed diff.
PAPER = {
    ("SLCT", "BGL"): (0.61, 0.94), ("SLCT", "HPC"): (0.81, 0.86),
    ("SLCT", "HDFS"): (0.86, 0.93), ("SLCT", "Zookeeper"): (0.92, 0.92),
    ("SLCT", "Proxifier"): (0.89, None),
    ("IPLoM", "BGL"): (0.99, 0.99), ("IPLoM", "HPC"): (0.64, 0.64),
    ("IPLoM", "HDFS"): (0.99, 1.00), ("IPLoM", "Zookeeper"): (0.94, 0.90),
    ("IPLoM", "Proxifier"): (0.90, None),
    ("LKE", "BGL"): (0.67, 0.70), ("LKE", "HPC"): (0.17, 0.17),
    ("LKE", "HDFS"): (0.57, 0.96), ("LKE", "Zookeeper"): (0.78, 0.82),
    ("LKE", "Proxifier"): (0.81, None),
    ("LogSig", "BGL"): (0.26, 0.98), ("LogSig", "HPC"): (0.77, 0.87),
    ("LogSig", "HDFS"): (0.91, 0.93), ("LogSig", "Zookeeper"): (0.96, 0.99),
    ("LogSig", "Proxifier"): (0.84, None),
}


def _run_cell(parser, dataset):
    sample_size = 500 if parser == "LKE" else 2000
    runs = 3 if parser in {"LKE", "LogSig"} else 1
    raw = evaluate_accuracy(
        parser, dataset, sample_size=sample_size, runs=runs, seed=1
    )
    preprocessed = None
    # Drain: match the paper parsers' protocol (no preprocessed run on
    # Proxifier, which has no preprocessing rules).
    wants_preprocessed = (
        dataset != "Proxifier"
        if parser == "Drain"
        else PAPER[(parser, dataset)][1] is not None
    )
    if wants_preprocessed:
        preprocessed = evaluate_accuracy(
            parser,
            dataset,
            sample_size=sample_size,
            preprocess=True,
            runs=runs,
            seed=1,
        )
    return raw, preprocessed


def _run_table():
    return {
        (parser, dataset): _run_cell(parser, dataset)
        for parser in PARSERS
        for dataset in DATASETS
    }


def test_table2_parsing_accuracy(once):
    results = once(_run_table)
    measured = render_table2(results, PARSERS, DATASETS)
    paper_rows = "\n".join(
        f"{parser:7s} "
        + "  ".join(
            f"{PAPER[(parser, d)][0]:.2f}/"
            + (
                f"{PAPER[(parser, d)][1]:.2f}"
                if PAPER[(parser, d)][1] is not None
                else "-"
            )
            for d in DATASETS
        )
        for parser in PARSERS_2016
    )
    emit(
        "table2_accuracy",
        f"Measured (raw/preprocessed):\n{measured}\n\n"
        f"Paper (raw/preprocessed), datasets {DATASETS}:\n{paper_rows}\n"
        "(Drain postdates the paper: no reference row.)",
    )

    # Finding 1: overall accuracy is high.
    raw_scores = [raw.mean_f_measure for raw, _pre in results.values()]
    assert statistics.fmean(raw_scores) > 0.6

    # IPLoM has the best overall average of the paper's four (0.88);
    # the 2017 Drain baseline is excluded from this 2016-era claim.
    def average(parser):
        return statistics.fmean(
            results[(parser, d)][0].mean_f_measure for d in DATASETS
        )

    iplom_average = average("IPLoM")
    assert iplom_average == max(average(p) for p in PARSERS_2016)
    assert 0.8 < iplom_average < 1.0

    # The expanded comparison: Drain is competitive with the best of
    # the paper's parsers across all five datasets.
    assert average("Drain") > 0.85

    # LKE collapses on HPC (paper 0.17).
    assert results[("LKE", "HPC")][0].mean_f_measure < 0.4

    # Finding 2: preprocessing helps SLCT and LogSig on BGL a lot...
    for parser in ("SLCT", "LogSig"):
        raw, preprocessed = results[(parser, "BGL")]
        assert preprocessed.mean_f_measure > raw.mean_f_measure + 0.1
    # ...but does not help IPLoM (nor Drain) anywhere, within noise:
    # both already isolate variable positions structurally.
    for parser in ("IPLoM", "Drain"):
        for dataset in DATASETS:
            raw, preprocessed = results[(parser, dataset)]
            if preprocessed is not None:
                assert (
                    preprocessed.mean_f_measure
                    <= raw.mean_f_measure + 0.05
                )
