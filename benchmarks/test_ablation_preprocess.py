"""Ablation A1 (Finding 2) — what preprocessing buys each parser.

Table II shows preprocessing in aggregate; this ablation isolates the
delta per parser on the two datasets with the strongest effects: BGL
(core-id removal rescues SLCT and LogSig) and HDFS (block-id + IP
removal rescues LKE).  IPLoM, which "considers preprocessing internally
in its four-step process", must be flat.
"""

from repro.evaluation.accuracy import evaluate_accuracy

from .conftest import emit

CELLS = [
    ("SLCT", "BGL"),
    ("LogSig", "BGL"),
    ("LKE", "HDFS"),
    ("IPLoM", "BGL"),
    ("IPLoM", "HDFS"),
]


def _run():
    deltas = {}
    for parser, dataset in CELLS:
        sample = 500 if parser == "LKE" else 2000
        runs = 3 if parser in {"LKE", "LogSig"} else 1
        raw = evaluate_accuracy(
            parser, dataset, sample_size=sample, runs=runs, seed=1
        )
        preprocessed = evaluate_accuracy(
            parser, dataset, sample_size=sample, preprocess=True,
            runs=runs, seed=1,
        )
        deltas[(parser, dataset)] = (
            raw.mean_f_measure,
            preprocessed.mean_f_measure,
        )
    return deltas


def test_ablation_preprocessing(once):
    deltas = once(_run)
    lines = [
        f"{parser:7s} {dataset:6s} raw={raw:.3f} preprocessed={pre:.3f} "
        f"delta={pre - raw:+.3f}"
        for (parser, dataset), (raw, pre) in deltas.items()
    ]
    emit("ablation_preprocess", "\n".join(lines))

    # Strong rescues.
    assert deltas[("SLCT", "BGL")][1] > deltas[("SLCT", "BGL")][0] + 0.10
    assert deltas[("LogSig", "BGL")][1] > deltas[("LogSig", "BGL")][0] + 0.10
    assert deltas[("LKE", "HDFS")][1] > deltas[("LKE", "HDFS")][0] + 0.20

    # IPLoM flat (within noise) on both datasets.
    for dataset in ("BGL", "HDFS"):
        raw, pre = deltas[("IPLoM", dataset)]
        assert abs(pre - raw) < 0.05
