"""CI performance gate over ``benchmarks/results/BENCH_stream.json``.

The streaming benchmark commits a machine-readable throughput artifact
every run; this gate turns that artifact into a regression tripwire:

* a JSONL **history** file (cached across CI runs) accumulates one
  entry per passing run;
* the **reference** throughput is the median ``lines_per_second`` of
  the most recent ``--window`` history entries — the median shrugs
  off a single noisy-runner outlier that a mean (or last-run-only
  comparison) would amplify;
* the gate **fails** (exit 1) when the current run falls more than
  ``--tolerance`` (default 15%) below the reference.

An empty history *seeds* instead of failing — the first run on a new
cache records itself and passes, so the gate never blocks a fresh
branch.  Failing runs are not recorded by default (a real regression
must not be able to drag the reference down by retrying); pass
``--record`` to accept a new, slower baseline deliberately.

Everything above the ``main`` entry point is a pure function over
plain data, so the policy is unit-testable without touching disk.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys

DEFAULT_TOLERANCE = 0.15
DEFAULT_WINDOW = 5


def load_result(path: str) -> dict:
    """Read one benchmark artifact (a single JSON object)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if "lines_per_second" not in payload:
        raise ValueError(f"{path}: no lines_per_second field")
    return payload


def load_history(path: str) -> list[dict]:
    """Read the JSONL history; tolerant of a torn final line.

    The history lives in a CI cache — a runner killed mid-append must
    not brick every later run, so undecodable lines are skipped.
    """
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def reference_throughput(
    history: list[dict], window: int = DEFAULT_WINDOW
) -> float | None:
    """Median lines/s of the last *window* usable entries (None if none)."""
    values = [
        float(entry["lines_per_second"])
        for entry in history
        if isinstance(entry.get("lines_per_second"), (int, float))
        and entry["lines_per_second"] > 0
    ]
    if not values:
        return None
    return statistics.median(values[-window:])


def evaluate(
    lines_per_second: float,
    reference: float,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, float]:
    """Gate decision: ``(ok, floor)`` where floor = reference*(1-tolerance)."""
    floor = reference * (1.0 - tolerance)
    return lines_per_second >= floor, floor


def history_entry(result: dict) -> dict:
    """The subset of a benchmark artifact worth trending."""
    entry = {
        "lines_per_second": result["lines_per_second"],
        "lines": result.get("lines"),
        "elapsed_seconds": result.get("elapsed_seconds"),
        "cache_hit_rate": result.get("cache_hit_rate"),
    }
    commit = os.environ.get("GITHUB_SHA")
    if commit:
        entry["commit"] = commit
    return entry


def append_history(path: str, entry: dict) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "result",
        help="benchmark artifact (benchmarks/results/BENCH_stream.json)",
    )
    parser.add_argument(
        "history",
        help="JSONL throughput history (persisted via the CI cache)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below the reference median",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help="history entries the reference median is taken over",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="record this run even if it fails the gate (accept a new "
        "baseline deliberately)",
    )
    args = parser.parse_args(argv)

    result = load_result(args.result)
    current = float(result["lines_per_second"])
    history = load_history(args.history)
    reference = reference_throughput(history, window=args.window)

    if reference is None:
        append_history(args.history, history_entry(result))
        print(
            f"perf gate: seeded history with {current:,.0f} lines/s "
            f"({len(history)} unusable prior entr(y/ies))"
        )
        return 0

    ok, floor = evaluate(current, reference, tolerance=args.tolerance)
    verdict = "ok" if ok else "REGRESSION"
    print(
        f"perf gate: {verdict} — {current:,.0f} lines/s vs reference "
        f"median {reference:,.0f} over last {args.window} run(s) "
        f"(floor {floor:,.0f} at -{args.tolerance:.0%})"
    )
    if ok or args.record:
        append_history(args.history, history_entry(result))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
