"""Fig. 2 — running time of the parsers vs. log volume (RQ2, Finding 3).

For each dataset the paper varies the number of raw messages over two to
four decades and plots wall-clock parsing time on a log-log scale.  The
shapes to reproduce: SLCT and IPLoM scale linearly and are fastest;
LogSig is linear but one-to-two orders of magnitude slower (time also
grows with the number of signature groups); LKE is quadratic and falls
off the chart — points it "could not parse in reasonable time" are
missing from the figure, reproduced here with a per-parser time budget.
"""

import math

from repro.evaluation.accuracy import TUNED_PARAMETERS
from repro.evaluation.efficiency import measure_runtime
from repro.evaluation.plots import ascii_plot
from repro.evaluation.reports import render_series
from repro.parsers import make_parser

from .conftest import emit

#: Size ladders per dataset (decade steps like the paper's BGL400→4M,
#: capped for laptop wall-clock).
SIZES = {
    "BGL": [400, 4_000, 40_000],
    "HPC": [400, 4_000, 40_000],
    "HDFS": [1_000, 10_000, 100_000],
    "Zookeeper": [400, 4_000, 40_000],
    "Proxifier": [100, 1_000, 10_000],
}

#: Seconds before larger sizes of the same parser are skipped.  LKE's
#: budget sits below its ~1.5k-rung cost on every dataset, so the
#: full-ladder top is always reported as skipped rather than letting
#: the quadratic clustering run for hours.
TIME_BUDGETS = {"SLCT": None, "IPLoM": None, "LogSig": 60.0, "LKE": 3.0}


def _sizes_for(parser_name, dataset_name):
    sizes = SIZES[dataset_name]
    if parser_name == "LKE":
        # LKE's quadratic clustering: ~600 lines stay comfortable, the
        # ~1.5k rung exceeds the time budget on every dataset, and the
        # full-ladder top is therefore reported as skipped — the
        # paper's missing Fig. 2 points.
        return sorted({sizes[0], 600, 1_500, sizes[-1]})
    if parser_name == "LogSig":
        # LogSig completes every rung, but its constant on the 40k
        # event-rich slices is minutes — cap its ladder at 8k (the
        # ratio to IPLoM at a shared size is what the figure needs).
        return sorted({min(size, 8_000) for size in sizes})
    return sizes


def _factory(parser_name, dataset_name):
    params = dict(TUNED_PARAMETERS[(parser_name, dataset_name)])
    if parser_name in {"LKE", "LogSig"}:
        params["seed"] = 1
    if parser_name == "LogSig":
        # Cap the local search: the scaling shape (linear in lines,
        # heavy constant growing with the group count) is identical per
        # round, and uncapped convergence on the 40k event-rich slices
        # costs tens of minutes without changing the figure.
        params["max_iterations"] = 5

    def build():
        return make_parser(parser_name, **params)

    return build


def _run_all():
    series = {}
    for dataset in SIZES:
        for parser in ["SLCT", "IPLoM", "LogSig", "LKE"]:
            series[(parser, dataset)] = measure_runtime(
                _factory(parser, dataset),
                dataset,
                sizes=_sizes_for(parser, dataset),
                seed=1,
                time_budget=TIME_BUDGETS[parser],
            )
    return series


def _growth_factor(points):
    """Runtime ratio per decade of input growth, geometric mean."""
    measured = [p for p in points if not p.skipped and p.seconds > 0]
    if len(measured) < 2:
        return None
    first, last = measured[0], measured[-1]
    decades = math.log10(last.size / first.size)
    if decades <= 0:
        return None
    return (last.seconds / max(first.seconds, 1e-6)) ** (1 / decades)


def test_fig2_running_time(once):
    series = once(_run_all)
    blocks = []
    for (parser, dataset), points in sorted(series.items()):
        blocks.append(render_series(f"{parser} on {dataset}", points))
    for dataset in SIZES:
        plot_series = {}
        for parser in ["SLCT", "IPLoM", "LogSig", "LKE"]:
            measured = [
                (p.size, max(p.seconds, 1e-4))
                for p in series[(parser, dataset)]
                if not p.skipped
            ]
            if measured:
                plot_series[parser] = measured
        blocks.append(
            ascii_plot(
                plot_series,
                title=f"Fig.2 {dataset}: seconds vs lines (log-log)",
            )
        )
    emit("fig2_efficiency", "\n\n".join(blocks))

    # Finding 3 shape checks on the largest ladder (HDFS):
    slct = series[("SLCT", "HDFS")]
    iplom = series[("IPLoM", "HDFS")]
    logsig = series[("LogSig", "HDFS")]
    lke = series[("LKE", "HDFS")]

    # SLCT and IPLoM finish the whole ladder.
    assert not any(p.skipped for p in slct + iplom)

    # Roughly linear: time grows ~10x per decade, far below quadratic's
    # 100x (allowing generous constant-factor noise).
    for points in (slct, iplom):
        growth = _growth_factor(points)
        assert growth is not None and growth < 40

    # LogSig is at least an order of magnitude slower than IPLoM at the
    # largest size both measured.
    logsig_done = {p.size: p for p in logsig if not p.skipped}
    iplom_done = {p.size: p for p in iplom if not p.skipped}
    shared = sorted(set(logsig_done) & set(iplom_done))
    assert shared
    largest = shared[-1]
    assert (
        logsig_done[largest].seconds > 5 * iplom_done[largest].seconds
    )

    # LKE cannot handle the upper end of the ladder (skipped points) —
    # or, at minimum, is drastically slower than the linear parsers.
    lke_skipped = any(p.skipped for p in lke)
    lke_done = [p for p in lke if not p.skipped]
    iplom_reference = next(
        (p for p in iplom if lke_done and p.size >= lke_done[-1].size),
        iplom[-1],
    )
    lke_slow = (
        lke_done
        and lke_done[-1].seconds > 20 * iplom_reference.seconds
    )
    assert lke_skipped or lke_slow
